"""Deterministic open-loop load generator for the live chat server.

Arrivals are **open-loop**: each client computes its whole send schedule
up front from a seeded RNG and sends at those absolute times regardless
of how fast replies come back.  An overloaded server therefore sees the
queue grow (and admission control engage) instead of the client
politely slowing down — the load model under which tail latency and
shedding are meaningful.

Determinism: client ``(room, client)`` derives its RNG from
``f"{seed}/{room}/{client}"``, so the *offered* load — arrival times,
message count, payload — is a pure function of :class:`ServeConfig`.
(Service times and therefore latencies remain as nondeterministic as
the machine the test runs on; the harness cache keys on the config, not
the result.)

Latency is measured end-to-end: the client stamps
``time.perf_counter_ns()`` into each message's ``t`` field and clocks
the round trip when its *own* fan-out copy returns — admission queueing,
scheduler pick, fan-out, and both socket directions included.

Failover hardening (opt-in via :func:`run_loadgen` keywords, used by the
cluster harness): with ``reconnect`` a client whose connection resets
mid-run dials back, re-joins its room, and counts a ``failover`` instead
of aborting; with ``retry_unacked`` every sent message stays in an
unacked table until its own echo returns — resent on a timer and after
each failover, deduplicated by ``seq`` on receive — which upgrades
delivery to at-least-once on the wire and exactly-once in the stats.
``unacked`` at the end of such a run is the count of genuinely dropped
completions (the cluster chaos gate asserts it is zero).

Dedup accounting distinguishes *why* a second copy of an own echo
arrived: ``duplicates`` counts at most one per seq the client actually
resent (both the original and a retry completed — the at-least-once tax
paid on the wire), while ``replays`` counts extra copies the *cluster*
produced without any client resend (a re-homed shard replaying fan-out).
A retry that lands on a re-homed shard after failover therefore shows up
once under ``duplicates``, never double-counted per extra echo.

Each confirmed own echo also stamps ``time.monotonic()`` into
``echo_mono`` — the raw completion timeline the cluster harness slices
into pre-kill and post-recovery throughput windows.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from . import protocol
from . import config as config_mod
from .config import ServeConfig
from .metrics import LatencySummary

__all__ = ["ClientStats", "LoadReport", "run_loadgen"]


@dataclass
class ClientStats:
    """One client's view of the run."""

    sent: int = 0
    echoes: int = 0        # own messages seen back (latency samples)
    received: int = 0      # every fan-out delivery, own or not
    shed: int = 0
    failovers: int = 0     # mid-run reconnects (connection reset/EOF)
    retries: int = 0       # resends of unacked messages
    duplicates: int = 0    # deduped echoes of seqs this client resent
    replays: int = 0       # deduped echoes the client never resent
    unacked: int = 0       # sends never echo-confirmed by run end
    latencies_ms: list[float] = field(default_factory=list)
    echo_mono: list[float] = field(default_factory=list)  # confirm times


@dataclass
class LoadReport:
    """Aggregated result of one loadgen run."""

    config: ServeConfig
    elapsed_seconds: float
    sent: int
    received: int
    echoes: int
    shed: int
    connect_failures: int
    latencies_ms: list[float]
    failovers: int = 0
    retries: int = 0
    duplicates: int = 0
    replays: int = 0
    unacked: int = 0
    #: Sorted ``time.monotonic()`` stamps of every confirmed echo —
    #: the completion timeline recovery metrics slice into windows.
    echo_mono: list[float] = field(default_factory=list)

    @property
    def latency(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies_ms)

    @property
    def throughput(self) -> float:
        """Completed round trips per second (echo-confirmed sends)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.echoes / self.elapsed_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "sent": self.sent,
            "received": self.received,
            "echoes": self.echoes,
            "shed": self.shed,
            "connect_failures": self.connect_failures,
            "failovers": self.failovers,
            "retries": self.retries,
            "duplicates": self.duplicates,
            "replays": self.replays,
            "unacked": self.unacked,
            "throughput": self.throughput,
            **self.latency.to_dict("latency_ms_"),
        }


def _arrival_schedule(config: ServeConfig, room: int, client: int) -> list[float]:
    """Absolute send offsets (seconds) for one client, seed-determined.

    With a :class:`~repro.serve.config.LoadSchedule` set, the gap before
    each send is drawn from the phase in force at the *current* offset,
    and the client sends until the phases run out — the message count is
    load-derived, not fixed.  Without one, the flat
    ``message_interval_ms`` × ``messages_per_client`` plan applies.
    """
    rng = random.Random(f"{config.seed}/{room}/{client}")
    jitter = config.arrival_jitter
    at = 0.0
    schedule: list[float] = []
    load = config.schedule()
    if not load.is_empty:
        while len(schedule) < config_mod.MAX_SCHEDULED_ARRIVALS:
            interval_ms = load.interval_at(at)
            if interval_ms is None:
                break
            at += (interval_ms / 1e3) * (1.0 + jitter * rng.uniform(-1.0, 1.0))
            if at > load.total_duration_s():
                break
            schedule.append(at)
        return schedule
    interval = config.message_interval_ms / 1e3
    for _ in range(config.messages_per_client):
        at += interval * (1.0 + jitter * rng.uniform(-1.0, 1.0))
        schedule.append(at)
    return schedule


def _payload(config: ServeConfig, room: int, client: int) -> str:
    rng = random.Random(f"{config.seed}/pad/{room}/{client}")
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for _ in range(config.payload_bytes))


async def _client(
    host: str,
    port: int,
    config: ServeConfig,
    room: int,
    client: int,
    deadline: float,
    stats: ClientStats,
    *,
    retry_unacked: bool = False,
    retry_interval_ms: float = 150.0,
    reconnect: bool = False,
) -> None:
    me = f"u{room}.{client}"
    room_name = f"r{room}"
    pad = _payload(config, room, client)
    #: seq → the full message frame, kept until its own echo returns.
    unacked: dict[int, dict[str, Any]] = {}
    acked: set[int] = set()
    #: seqs this client resent and whose duplicate echo is still owed —
    #: each earns at most ONE ``duplicates`` tick; any further deduped
    #: echo (a retry landing on a re-homed shard, a cluster replay) is a
    #: ``replay``, so failover retries never double-count.
    resent: set[int] = set()
    quitting = False

    async def establish():
        r, w = await asyncio.open_connection(host, port)
        w.write(
            protocol.encode(
                {"op": protocol.OP_JOIN, "room": room_name, "user": me}
            )
        )
        await w.drain()
        return r, w

    # The first connection failing is a connect failure, as before; only
    # a connection that *was* established gets the failover treatment.
    reader, writer = await establish()

    def handle(message: dict[str, Any]) -> bool:
        """Dispatch one received frame; False ends the receive loop."""
        op = message.get("op")
        if op == protocol.OP_MSG:
            if message.get("user") == me:
                seq = message.get("seq")
                if retry_unacked:
                    if seq in acked:
                        if seq in resent:
                            resent.discard(seq)
                            stats.duplicates += 1
                        else:
                            stats.replays += 1
                        return True
                    acked.add(seq)
                    unacked.pop(seq, None)
                stats.received += 1
                stats.echoes += 1
                stats.echo_mono.append(time.monotonic())
                t = message.get("t")
                if isinstance(t, int):
                    stats.latencies_ms.append(
                        (time.perf_counter_ns() - t) / 1e6
                    )
            else:
                stats.received += 1
        elif op == protocol.OP_SHED:
            stats.shed += 1
        elif op == protocol.OP_BYE:
            return False
        return True

    def resend_unacked(w: asyncio.StreamWriter) -> None:
        for seq in sorted(unacked):
            message = unacked[seq]
            message["t"] = time.perf_counter_ns()
            w.write(protocol.encode(message))
            stats.retries += 1
            resent.add(seq)

    async def failover() -> bool:
        """Dial back in after a lost connection; re-drive unacked sends."""
        nonlocal reader, writer
        stats.failovers += 1
        patience = deadline + config.drain_grace_s
        while time.monotonic() < patience:
            try:
                reader, writer = await establish()
            except OSError:
                await asyncio.sleep(0.05)
                continue
            try:
                resend_unacked(writer)
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                continue  # lost it again already; keep trying
            return True
        return False

    async def receive() -> None:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionResetError, OSError, ValueError):
                line = b""
            if not line:
                if quitting or not reconnect:
                    return
                if time.monotonic() >= deadline and not unacked:
                    return
                if not await failover():
                    return
                continue
            try:
                message = protocol.decode(line)
            except protocol.ProtocolError:
                return
            if message is None:
                continue
            if not handle(message):
                return

    async def retry_loop() -> None:
        interval = max(0.001, retry_interval_ms / 1e3)
        while True:
            await asyncio.sleep(interval)
            if not unacked:
                continue
            w = writer
            try:
                resend_unacked(w)
                await w.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass  # the failover path owns recovery

    rx = asyncio.create_task(receive())
    retrier = (
        asyncio.create_task(retry_loop()) if retry_unacked else None
    )
    try:
        start = time.monotonic()
        for seq, offset in enumerate(_arrival_schedule(config, room, client)):
            now = time.monotonic()
            if now >= deadline:
                break
            send_at = start + offset
            if send_at > now:
                await asyncio.sleep(min(send_at - now, deadline - now))
                if time.monotonic() >= deadline:
                    break
            message = {
                "op": protocol.OP_MSG,
                "room": room_name,
                "user": me,
                "seq": seq,
                "t": time.perf_counter_ns(),
                "pad": pad,
            }
            if retry_unacked:
                unacked[seq] = message
            try:
                writer.write(protocol.encode(message))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                if not reconnect:
                    raise
                # The receive loop is reconnecting; retry_unacked sends
                # are re-driven on the new connection, fire-and-forget
                # sends are simply lost (counted by sent - echoes).
            stats.sent += 1
        # In retry mode, hold the line until every send is confirmed or
        # the deadline truly expires — this is the zero-dropped window.
        if retry_unacked:
            while unacked and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
        # Give in-flight fan-out a chance to arrive, then say goodbye.
        # A chaos run may reset the connection under us at any of these
        # steps; a dead socket here means "drained", not "failed".
        grace = max(0.0, min(0.5, deadline - time.monotonic()))
        if grace:
            try:
                await asyncio.wait_for(asyncio.shield(rx), timeout=grace)
            except (
                asyncio.TimeoutError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                pass
        quitting = True
        if retrier is not None:
            retrier.cancel()
        try:
            writer.write(protocol.encode({"op": protocol.OP_QUIT}))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        try:
            await asyncio.wait_for(rx, timeout=config.drain_grace_s)
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            rx.cancel()
    finally:
        quitting = True
        if retrier is not None:
            retrier.cancel()
        stats.unacked = len(unacked)
        try:
            writer.close()
        except Exception:
            pass


async def run_loadgen(
    host: str,
    port: int,
    config: ServeConfig,
    *,
    retry_unacked: bool = False,
    retry_interval_ms: float = 150.0,
    reconnect: bool = False,
) -> LoadReport:
    """Drive one full deterministic load against a running server.

    ``reconnect``/``retry_unacked`` select the failover-hardened client
    (see the module docstring); both default off so a plain serve run
    keeps its historical semantics.
    """
    deadline = time.monotonic() + config.duration_s
    stats = [
        ClientStats()
        for _ in range(config.rooms * config.clients_per_room)
    ]
    started = time.monotonic()
    jobs = []
    index = 0
    for room in range(config.rooms):
        for client in range(config.clients_per_room):
            jobs.append(
                _client(
                    host,
                    port,
                    config,
                    room,
                    client,
                    deadline,
                    stats[index],
                    retry_unacked=retry_unacked,
                    retry_interval_ms=retry_interval_ms,
                    reconnect=reconnect,
                )
            )
            index += 1
    outcomes = await asyncio.gather(*jobs, return_exceptions=True)
    elapsed = time.monotonic() - started
    failures = sum(1 for o in outcomes if isinstance(o, BaseException))
    latencies: list[float] = []
    echo_mono: list[float] = []
    for s in stats:
        latencies.extend(s.latencies_ms)
        echo_mono.extend(s.echo_mono)
    echo_mono.sort()
    return LoadReport(
        config=config,
        elapsed_seconds=elapsed,
        sent=sum(s.sent for s in stats),
        received=sum(s.received for s in stats),
        echoes=sum(s.echoes for s in stats),
        shed=sum(s.shed for s in stats),
        connect_failures=failures,
        latencies_ms=latencies,
        failovers=sum(s.failovers for s in stats),
        retries=sum(s.retries for s in stats),
        duplicates=sum(s.duplicates for s in stats),
        replays=sum(s.replays for s in stats),
        unacked=sum(s.unacked for s in stats),
        echo_mono=echo_mono,
    )
