"""Deterministic open-loop load generator for the live chat server.

Arrivals are **open-loop**: each client computes its whole send schedule
up front from a seeded RNG and sends at those absolute times regardless
of how fast replies come back.  An overloaded server therefore sees the
queue grow (and admission control engage) instead of the client
politely slowing down — the load model under which tail latency and
shedding are meaningful.

Determinism: client ``(room, client)`` derives its RNG from
``f"{seed}/{room}/{client}"``, so the *offered* load — arrival times,
message count, payload — is a pure function of :class:`ServeConfig`.
(Service times and therefore latencies remain as nondeterministic as
the machine the test runs on; the harness cache keys on the config, not
the result.)

Latency is measured end-to-end: the client stamps
``time.perf_counter_ns()`` into each message's ``t`` field and clocks
the round trip when its *own* fan-out copy returns — admission queueing,
scheduler pick, fan-out, and both socket directions included.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from . import protocol
from . import config as config_mod
from .config import ServeConfig
from .metrics import LatencySummary

__all__ = ["ClientStats", "LoadReport", "run_loadgen"]


@dataclass
class ClientStats:
    """One client's view of the run."""

    sent: int = 0
    echoes: int = 0        # own messages seen back (latency samples)
    received: int = 0      # every fan-out delivery, own or not
    shed: int = 0
    latencies_ms: list[float] = field(default_factory=list)


@dataclass
class LoadReport:
    """Aggregated result of one loadgen run."""

    config: ServeConfig
    elapsed_seconds: float
    sent: int
    received: int
    echoes: int
    shed: int
    connect_failures: int
    latencies_ms: list[float]

    @property
    def latency(self) -> LatencySummary:
        return LatencySummary.from_samples(self.latencies_ms)

    @property
    def throughput(self) -> float:
        """Completed round trips per second (echo-confirmed sends)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.echoes / self.elapsed_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "sent": self.sent,
            "received": self.received,
            "echoes": self.echoes,
            "shed": self.shed,
            "connect_failures": self.connect_failures,
            "throughput": self.throughput,
            **self.latency.to_dict("latency_ms_"),
        }


def _arrival_schedule(config: ServeConfig, room: int, client: int) -> list[float]:
    """Absolute send offsets (seconds) for one client, seed-determined.

    With a :class:`~repro.serve.config.LoadSchedule` set, the gap before
    each send is drawn from the phase in force at the *current* offset,
    and the client sends until the phases run out — the message count is
    load-derived, not fixed.  Without one, the flat
    ``message_interval_ms`` × ``messages_per_client`` plan applies.
    """
    rng = random.Random(f"{config.seed}/{room}/{client}")
    jitter = config.arrival_jitter
    at = 0.0
    schedule: list[float] = []
    load = config.schedule()
    if not load.is_empty:
        while len(schedule) < config_mod.MAX_SCHEDULED_ARRIVALS:
            interval_ms = load.interval_at(at)
            if interval_ms is None:
                break
            at += (interval_ms / 1e3) * (1.0 + jitter * rng.uniform(-1.0, 1.0))
            if at > load.total_duration_s():
                break
            schedule.append(at)
        return schedule
    interval = config.message_interval_ms / 1e3
    for _ in range(config.messages_per_client):
        at += interval * (1.0 + jitter * rng.uniform(-1.0, 1.0))
        schedule.append(at)
    return schedule


def _payload(config: ServeConfig, room: int, client: int) -> str:
    rng = random.Random(f"{config.seed}/pad/{room}/{client}")
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for _ in range(config.payload_bytes))


async def _client(
    host: str,
    port: int,
    config: ServeConfig,
    room: int,
    client: int,
    deadline: float,
    stats: ClientStats,
) -> None:
    me = f"u{room}.{client}"
    room_name = f"r{room}"
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError:
        raise
    try:
        writer.write(
            protocol.encode(
                {"op": protocol.OP_JOIN, "room": room_name, "user": me}
            )
        )
        await writer.drain()

        async def receive() -> None:
            while True:
                line = await reader.readline()
                if not line:
                    return
                try:
                    message = protocol.decode(line)
                except protocol.ProtocolError:
                    return
                if message is None:
                    continue
                op = message.get("op")
                if op == protocol.OP_MSG:
                    stats.received += 1
                    if message.get("user") == me:
                        stats.echoes += 1
                        t = message.get("t")
                        if isinstance(t, int):
                            stats.latencies_ms.append(
                                (time.perf_counter_ns() - t) / 1e6
                            )
                elif op == protocol.OP_SHED:
                    stats.shed += 1
                elif op == protocol.OP_BYE:
                    return

        rx = asyncio.create_task(receive())
        pad = _payload(config, room, client)
        start = time.monotonic()
        for seq, offset in enumerate(_arrival_schedule(config, room, client)):
            now = time.monotonic()
            if now >= deadline:
                break
            send_at = start + offset
            if send_at > now:
                await asyncio.sleep(min(send_at - now, deadline - now))
                if time.monotonic() >= deadline:
                    break
            writer.write(
                protocol.encode(
                    {
                        "op": protocol.OP_MSG,
                        "room": room_name,
                        "user": me,
                        "seq": seq,
                        "t": time.perf_counter_ns(),
                        "pad": pad,
                    }
                )
            )
            await writer.drain()
            stats.sent += 1
        # Give in-flight fan-out a chance to arrive, then say goodbye.
        # A chaos run may reset the connection under us at any of these
        # steps; a dead socket here means "drained", not "failed".
        grace = max(0.0, min(0.5, deadline - time.monotonic()))
        if grace:
            try:
                await asyncio.wait_for(asyncio.shield(rx), timeout=grace)
            except (
                asyncio.TimeoutError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                pass
        try:
            writer.write(protocol.encode({"op": protocol.OP_QUIT}))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        try:
            await asyncio.wait_for(rx, timeout=config.drain_grace_s)
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError):
            rx.cancel()
    finally:
        try:
            writer.close()
        except Exception:
            pass


async def run_loadgen(
    host: str, port: int, config: ServeConfig
) -> LoadReport:
    """Drive one full deterministic load against a running server."""
    deadline = time.monotonic() + config.duration_s
    stats = [
        ClientStats()
        for _ in range(config.rooms * config.clients_per_room)
    ]
    started = time.monotonic()
    jobs = []
    index = 0
    for room in range(config.rooms):
        for client in range(config.clients_per_room):
            jobs.append(
                _client(host, port, config, room, client, deadline, stats[index])
            )
            index += 1
    outcomes = await asyncio.gather(*jobs, return_exceptions=True)
    elapsed = time.monotonic() - started
    failures = sum(1 for o in outcomes if isinstance(o, BaseException))
    latencies: list[float] = []
    for s in stats:
        latencies.extend(s.latencies_ms)
    return LoadReport(
        config=config,
        elapsed_seconds=elapsed,
        sent=sum(s.sent for s in stats),
        received=sum(s.received for s in stats),
        echoes=sum(s.echoes for s in stats),
        shed=sum(s.shed for s in stats),
        connect_failures=failures,
        latencies_ms=latencies,
    )
