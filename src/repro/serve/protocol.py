"""Wire protocol of the live chat server: newline-delimited JSON.

One JSON object per line, UTF-8, ``\\n`` terminated — trivially
debuggable with ``nc`` and framing-safe over asyncio stream readers.

Client → server operations::

    {"op": "join", "room": "r0", "user": "u3"}
    {"op": "msg",  "room": "r0", "user": "u3", "seq": 7, "t": <ns>, "pad": "…"}
    {"op": "metrics"}
    {"op": "quit"}

Server → client operations::

    {"op": "welcome", "session": 12}
    {"op": "joined",  "room": "r0", "members": 8}
    {"op": "metrics", "counters": {…}, "metrics": {…}}   # live snapshot;
                                         # "metrics" is {} when no
                                         # MetricsProbe is attached
    {"op": "msg",     …fan-out copy, origin fields preserved…}
    {"op": "shed",    "seq": 7}          # admission control dropped it
    {"op": "shed",    "seq": 7, "retry_after_ms": 2000.0}   # shed under
                                         # a declared overload window
    {"op": "expired", "seq": 7}          # queued past its deadline
    {"op": "bye"}

``t`` is an opaque client timestamp echoed back unmodified; the load
generator stamps ``time.perf_counter_ns()`` and computes round-trip
latency when its own fan-out copy returns.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = [
    "OP_JOIN",
    "OP_MSG",
    "OP_METRICS",
    "OP_QUIT",
    "OP_WELCOME",
    "OP_JOINED",
    "OP_SHED",
    "OP_EXPIRED",
    "OP_BYE",
    "MAX_LINE_BYTES",
    "encode",
    "decode",
    "ProtocolError",
]

OP_JOIN = "join"
OP_MSG = "msg"
OP_METRICS = "metrics"
OP_QUIT = "quit"
OP_WELCOME = "welcome"
OP_JOINED = "joined"
OP_SHED = "shed"
OP_EXPIRED = "expired"
OP_BYE = "bye"

#: Upper bound on one frame; oversized lines are a protocol error, not
#: an allocation.  Generous for padded benchmark messages.
MAX_LINE_BYTES = 64 * 1024


class ProtocolError(ValueError):
    """A frame that is not valid line-JSON or has no ``op``."""


def encode(message: dict[str, Any]) -> bytes:
    """One frame: compact JSON plus the line terminator.

    Raises :class:`ProtocolError` when the encoded frame would exceed
    :data:`MAX_LINE_BYTES` — a frame the sender may not put on the wire
    is an error at the sender, not something for the receiver to choke
    on.  (JSON string escaping guarantees the payload itself contains
    no raw newline, so the line framing cannot be broken from inside.)
    """
    payload = json.dumps(message, separators=(",", ":")).encode()
    if len(payload) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds limit of "
            f"{MAX_LINE_BYTES}"
        )
    return payload + b"\n"


def decode(line: bytes) -> Optional[dict[str, Any]]:
    """Parse one received line; ``None`` for a blank keep-alive line.

    Raises :class:`ProtocolError` on garbage — the server answers by
    closing the session rather than guessing.
    """
    stripped = line.strip()
    if not stripped:
        return None
    if len(stripped) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame of {len(stripped)} bytes exceeds limit")
    try:
        message = json.loads(stripped)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError(f"frame without op: {message!r}")
    return message
