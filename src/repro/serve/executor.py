"""SchedulerExecutor — kernel scheduling policies driving userspace work.

The simulator's :class:`~repro.sched.base.Scheduler` interface is five
functions over :class:`~repro.kernel.task.Task` objects.  Nothing in it
requires simulated time: ``goodness()``, the ELSC tables, and the
multi-queue stealing logic read task fields (``counter``, ``priority``,
``has_cpu``, ``processor``) and CPU identity only.  This module exploits
that to run any registered policy *unmodified* as the dispatch policy of
a live server: each connection handler is mapped to a ``Task``, arrivals
are wakeups, and "which session do we serve next" is answered by the
policy's own ``schedule()``.

The executor mirrors the Machine's bookkeeping contract exactly —
``wake_up_process`` wakeup dedup, ``_dispatch``'s ``has_cpu`` /
``processor`` / migration accounting — so a policy cannot tell whether
it is bound to the discrete-event machine or to a socket loop.  The
differential conformance test (``tests/serve/``) holds the two hosts to
the same dispatch order for identical arrival traces.

SMP is modelled with *virtual CPUs*: the asyncio loop is one real
thread, but ``schedule()`` is invoked round-robin over ``num_cpus``
:class:`~repro.kernel.cpu.CPU` objects, so per-CPU policies (``mq``,
``o1``) exercise their multi-queue paths — including migrations by
stealing — exactly as they would on real processors.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

from ..kernel.cost_model import CostModel
from ..kernel.cpu import CPU
from ..kernel.task import SchedPolicy, Task, TaskState
from ..obs.probe import (
    DispatchEvent,
    PreemptEvent,
    ProbeSet,
    SchedEvent,
    WakeupEvent,
)
from ..obs.probes import ProfilerProbe
from ..sched.base import Scheduler
from ..sched.stats import SchedStats

__all__ = ["SchedulerExecutor"]


class _Clock:
    """Monotonic virtual time; advanced by decision cost per pick."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now: int = 0


class _ExecutorMachine:
    """The duck-typed machine a :class:`Scheduler` binds against.

    Provides every attribute the scheduler layer touches — ``cost``,
    ``smp``, ``cpus``, ``live_tasks()``, ``clock``, ``probes`` and the
    global-lock timeline fields — with none of the event loop.
    """

    def __init__(self, num_cpus: int, smp: bool, cost: CostModel) -> None:
        self.cost = cost
        self.smp = smp
        self.cpus = [CPU(i) for i in range(num_cpus)]
        self.clock = _Clock()
        #: Shared with the owning executor (one pipeline per host).
        self.probes = ProbeSet()
        self.lock_free_at = 0
        self.lock_owner_cpu: Optional[int] = None
        self._tasks: dict[int, Task] = {}

    def live_tasks(self) -> Iterable[Task]:
        return (t for t in self._tasks.values() if not t.exited)


class SchedulerExecutor:
    """Dispatch userspace work units through a kernel scheduling policy.

    Life cycle of one handler::

        task = executor.register("session-3")      # blocked, no work yet
        executor.ready(task)                       # request arrived
        picked = executor.pick()                   # policy chooses
        ...serve up to `batch` requests...
        executor.charge_slice(picked)              # quantum accounting
        executor.release(picked, blocked=empty)    # back to the queue/bed
        executor.deregister(task)                  # connection closed

    ``pick()`` rotates over the virtual CPUs; a ``None`` return means
    every policy table was empty *for the CPUs tried this round* — use
    :meth:`has_runnable` (not ``pick() is None``) as the wait gate,
    because a runnable handler that is still ``cpu.current`` elsewhere
    is invisible to other CPUs' ``schedule()`` by the kernel contract.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        num_cpus: int = 1,
        smp: bool = False,
        cost: Optional[CostModel] = None,
        prof: Optional[object] = None,
        factory: Optional[Callable[[], Scheduler]] = None,
    ) -> None:
        if num_cpus < 1:
            raise ValueError("executor needs at least one virtual CPU")
        self.scheduler = scheduler
        #: How :meth:`rebuild` replaces a crashed policy instance.  The
        #: default assumes a no-argument scheduler class, which every
        #: registered policy satisfies.
        self._factory: Callable[[], Scheduler] = (
            factory if factory is not None else type(scheduler)
        )
        #: Stats of scheduler instances retired by :meth:`rebuild`, so
        #: a supervised restart loses no accounting.
        self._retired_stats: list[SchedStats] = []
        self.rebuilds = 0
        self._crash_next = False
        self.machine = _ExecutorMachine(
            num_cpus, smp, cost if cost is not None else CostModel()
        )
        #: The probe pipeline (shared with the duck-typed machine so the
        #: scheduler layer's emissions land in the same stream).  The
        #: executor reports the same phases as the simulated machine:
        #: the schedule() phase split is exact (it is the decision's own
        #: cost), while ``dispatch``/``migrate`` are the cost model's
        #: *imputed* switch and cache-refill charges (the live server
        #: pays them in wall time, not virtual cycles).
        self.probes = self.machine.probes
        if prof is not None:
            self.attach(ProfilerProbe(prof))
        self._detect_hooks(scheduler)
        scheduler.bind(self.machine)  # type: ignore[arg-type]
        self._cursor = 0
        #: Wall-clock nanoseconds spent inside schedule(), one sample
        #: per invocation (the live pick-latency metric).
        self.pick_ns: list[int] = []
        self._pick_ns_cap = 1 << 16
        self.picks = 0
        self.idle_picks = 0

    @classmethod
    def from_name(
        cls,
        name: str,
        num_cpus: int = 1,
        smp: bool = False,
        cost: Optional[CostModel] = None,
        prof: Optional[object] = None,
    ) -> "SchedulerExecutor":
        """Build an executor for a registry-named policy (aliases ok).

        The single front door for the serve and cluster layers: the
        name goes through :func:`repro.sched.registry.create`, so any
        scheduler registered anywhere in the process is servable
        without per-layer tables.
        """
        from ..sched.registry import create, get

        info = get(name)
        return cls(
            create(name),
            num_cpus=num_cpus,
            smp=smp,
            cost=cost,
            prof=prof,
            factory=info.factory,
        )

    def _detect_hooks(self, scheduler: Scheduler) -> None:
        """Detect overridden API-v2 hooks once per bound instance.

        Mirrors the simulated Machine: a policy keeping the base
        no-ops pays nothing on the register/deregister/charge paths.
        """
        sched_cls = type(scheduler)
        self._hook_tick = sched_cls.on_tick is not Scheduler.on_tick
        self._hook_fork = sched_cls.on_fork is not Scheduler.on_fork
        self._hook_exit = sched_cls.on_exit is not Scheduler.on_exit

    # -- observers -----------------------------------------------------------

    def attach(self, probe: object) -> object:
        """Attach a probe to the executor's pipeline (and return it)."""
        self.probes.add(probe)
        probe.on_attach(self)
        probe.set_scheduler(self.scheduler.name)
        return probe

    def detach(self, probe: object) -> None:
        """Remove a probe from the pipeline (idempotent)."""
        self.probes.remove(probe)

    @property
    def prof(self) -> Optional[object]:
        """The first attached profiler sink, or None (compat read)."""
        probe = self.probes.first(ProfilerProbe)
        return probe.sink if probe is not None else None

    # -- handler lifecycle ---------------------------------------------------

    def register(
        self,
        name: str,
        priority: Optional[int] = None,
        policy: SchedPolicy = SchedPolicy.SCHED_OTHER,
        rt_priority: int = 0,
        user: object = None,
    ) -> Task:
        """Create the Task standing in for one handler; starts blocked."""
        task = (
            Task(name=name, policy=policy, rt_priority=rt_priority)
            if priority is None
            else Task(
                name=name,
                priority=priority,
                policy=policy,
                rt_priority=rt_priority,
            )
        )
        # A fresh Task is born RUNNING; a fresh handler has no work.
        task.state = TaskState.INTERRUPTIBLE
        task.user = user
        self.machine._tasks[task.pid] = task
        if self._hook_fork:
            self.scheduler.on_fork(task)
        return task

    def deregister(self, task: Task) -> None:
        """Handler gone (connection closed): off the queue, off a CPU."""
        if task.exited:
            return
        for cpu in self.machine.cpus:
            if cpu.current is task:
                cpu.current = cpu.idle_task
                cpu.idle_task.has_cpu = True
        task.has_cpu = False
        self.scheduler.del_from_runqueue(task)
        task.mark_exited()
        self.machine._tasks.pop(task.pid, None)
        if self._hook_exit:
            self.scheduler.on_exit(task)

    # -- wakeup (mirrors Machine.wake_up_process) -----------------------------

    def ready(self, task: Task) -> bool:
        """Work arrived for ``task``; returns True if it was enqueued.

        Dedup semantics are the kernel's: a task already runnable on the
        queue is a spurious wake; a task still ``on_runqueue`` (it is
        somebody's ``current``) just flips back to RUNNING.
        """
        if task.exited:
            return False
        if task.state is TaskState.RUNNING and task.on_runqueue():
            return False
        task.state = TaskState.RUNNING
        if task.on_runqueue():
            return False
        task.wakeup_count += 1
        insert = self.scheduler.add_to_runqueue(task)
        probes = self.probes
        if probes.wakeup:
            ev = WakeupEvent(
                self.machine.clock.now,
                -1,
                -1,
                task,
                self.machine.cost.wakeup_cost + insert,
                0,
            )
            probes.emit_wakeup(ev)
        return True

    # -- dispatch (mirrors Machine._dispatch bookkeeping) ---------------------

    def pick(self) -> Optional[Task]:
        """Ask the policy for the next handler to serve.

        Tries each virtual CPU once, round-robin, and returns the first
        non-idle decision; ``None`` when every try came back idle.
        """
        machine = self.machine
        ncpu = len(machine.cpus)
        for _ in range(ncpu):
            cpu = machine.cpus[self._cursor]
            self._cursor = (self._cursor + 1) % ncpu
            task = self._pick_on(cpu)
            if task is not None:
                return task
        return None

    def _pick_on(self, cpu: CPU) -> Optional[Task]:
        if self._crash_next:
            # Chaos hook (repro.faults): the adapter blows up out of a
            # pick, exactly like a policy bug would, and the server's
            # supervisor is expected to rebuild() us.
            self._crash_next = False
            raise RuntimeError("injected executor crash (fault plan)")
        scheduler = self.scheduler
        stats = scheduler.stats
        prev = cpu.current
        self.picks += 1
        t0 = time.perf_counter_ns()
        decision = scheduler.schedule(prev, cpu)
        elapsed = time.perf_counter_ns() - t0
        if len(self.pick_ns) < self._pick_ns_cap:
            self.pick_ns.append(elapsed)
        machine = self.machine
        picked_at = machine.clock.now
        machine.clock.now += max(1, decision.cost)
        next_task = decision.next_task
        probes = self.probes
        if probes.sched:
            target = next_task if next_task is not None else cpu.idle_task
            switch = 0
            if next_task is not None and next_task is not prev:
                same_mm = next_task.mm is None or next_task.mm is prev.mm
                switch = machine.cost.switch_cost(same_mm)
            migrated_from = None
            if (
                next_task is not None
                and next_task.processor != cpu.cpu_id
                and next_task.processor != -1
            ):
                migrated_from = next_task.processor
            # A live pick is instantaneous in virtual time: every charge
            # lands at picked_at (start == dec_end == end).
            ev = SchedEvent(
                picked_at,
                picked_at,
                picked_at,
                picked_at,
                cpu.cpu_id,
                prev,
                next_task,
                target,
                decision.cost,
                decision.eval_cycles,
                decision.recalc_cycles,
                decision.examined,
                switch,
                migrated_from,
            )
            probes.emit_sched(ev)

        prev.has_cpu = False
        if next_task is None:
            stats.idle_schedules += 1
            self.idle_picks += 1
            cpu.current = cpu.idle_task
            cpu.idle_task.has_cpu = True
            return None
        if next_task is not prev:
            stats.switches += 1
        if next_task.processor != cpu.cpu_id:
            stats.picks_without_affinity += 1
            if next_task.processor != -1:
                stats.migrations += 1
                next_task.migration_count += 1
                next_task.cache_cold = True
                if probes.dispatch:
                    dev = DispatchEvent(
                        machine.clock.now,
                        cpu.cpu_id,
                        next_task,
                        machine.cost.cache_refill,
                    )
                    probes.emit_dispatch(dev)
        next_task.has_cpu = True
        next_task.processor = cpu.cpu_id
        next_task.dispatch_count += 1
        cpu.current = next_task
        cpu.dispatches += 1
        return next_task

    # -- slice accounting ------------------------------------------------------

    def charge_slice(self, task: Task) -> None:
        """One dispatch slice consumed: the tick-handler's quantum math.

        SCHED_FIFO runs untimed; everyone else burns one counter tick,
        and hitting zero is recorded as a quantum-expiry preemption —
        the same event the simulator's tick path counts.
        """
        if task.policy is SchedPolicy.SCHED_FIFO:
            return
        task.ticks_consumed += 1
        if task.counter > 0:
            task.counter -= 1
            if task.counter == 0:
                self.scheduler.stats.preemptions += 1
                if self.probes.sched:
                    ev = PreemptEvent(
                        self.machine.clock.now, task.processor, task, 0
                    )
                    self.probes.emit_sched(ev)
        if self._hook_tick:
            self.scheduler.on_tick(task, task.processor)

    def release(self, task: Task, blocked: bool) -> None:
        """Return a served handler to the policy's jurisdiction.

        The task stays ``cpu.current`` / ``has_cpu`` until the next
        ``schedule()`` on that CPU — exactly the kernel's window between
        a task blocking and its CPU switching away.  ``blocked=True``
        when the handler's inbox is empty.
        """
        if task.exited:
            return
        task.state = (
            TaskState.INTERRUPTIBLE if blocked else TaskState.RUNNING
        )

    # -- supervision -----------------------------------------------------------

    def inject_crash(self) -> None:
        """Arm a one-shot crash: the next ``pick()`` raises."""
        self._crash_next = True

    def rebuild(self) -> None:
        """Replace a crashed scheduler instance, preserving every handler.

        The dead instance's stats are retired (``merged_stats`` still
        counts them), a fresh policy is built and bound, the virtual
        CPUs are reset to idle, every surviving task's runqueue linkage
        is cleared, and the runnable ones are re-enqueued — the live
        analogue of rebuilding the runqueue after a scheduler hot-swap.
        """
        self._retired_stats.append(self.scheduler.stats)
        machine = self.machine
        for cpu in machine.cpus:
            cpu.current = cpu.idle_task
            cpu.idle_task.has_cpu = True
        for task in machine._tasks.values():
            # Old policy's intrusive links are garbage now: unlink.
            task.has_cpu = False
            task.run_list.next = None
            task.run_list.prev = None
        self.scheduler = self._factory()
        self._detect_hooks(self.scheduler)
        self.scheduler.bind(machine)  # type: ignore[arg-type]
        self.probes.set_scheduler(self.scheduler.name)
        for task in machine._tasks.values():
            if not task.exited and task.state is TaskState.RUNNING:
                self.scheduler.add_to_runqueue(task)
        self.rebuilds += 1

    def merged_stats(self) -> SchedStats:
        """Stats across the current scheduler and every retired one."""
        total = self.scheduler.stats
        for retired in self._retired_stats:
            total = total.merged_with(retired)
        return total

    # -- introspection ---------------------------------------------------------

    def has_runnable(self) -> bool:
        """True while any registered handler is runnable (the wait gate)."""
        return any(
            t.state is TaskState.RUNNING
            for t in self.machine._tasks.values()
            if not t.exited
        )

    def runnable_count(self) -> int:
        return sum(
            1
            for t in self.machine._tasks.values()
            if not t.exited and t.state is TaskState.RUNNING
        )

    def live_count(self) -> int:
        return sum(1 for _ in self.machine.live_tasks())

    def __repr__(self) -> str:
        return (
            f"<SchedulerExecutor {self.scheduler.name} "
            f"cpus={len(self.machine.cpus)} live={self.live_count()} "
            f"picks={self.picks}>"
        )
