"""Configuration for the live serving subsystem.

:class:`ServeConfig` is the single knob surface shared by the chat
server, the load generator, and the harness workload definition — it is
registered as the config class of the ``"serve"`` workload, so every
live run is addressable as a :class:`~repro.harness.RunSpec` cell
(scalars only, defaults filled, content-hashed) exactly like a
simulated one.

The defaults mirror the paper's VolanoMark topology at miniature scale:
``rooms × clients_per_room`` chat clients, every message fanned out to
the whole room.  ``VolanoConfig.paper()`` uses 20 users per room; the
live default is reduced so smoke runs stay in the seconds range — scale
``rooms``/``clients_per_room`` up for a real loadtest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

__all__ = ["ServeConfig", "LoadPhase", "LoadSchedule"]

#: Hard cap on arrivals one client may generate from a load schedule —
#: a guard against "tiny interval × long phase" blowing up the schedule
#: list, far above anything a smoke or stress run produces.
MAX_SCHEDULED_ARRIVALS = 100_000


@dataclass(frozen=True)
class LoadPhase:
    """One segment of a load schedule: send every ``interval_ms`` for
    ``duration_s`` seconds.  Phases chain back to back, so a spike is
    ``[calm, burst, calm]`` and a ramp is a staircase of phases."""

    duration_s: float
    interval_ms: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"phase duration_s must be > 0, got {self.duration_s}")
        if self.interval_ms <= 0:
            raise ValueError(f"phase interval_ms must be > 0, got {self.interval_ms}")

    def to_dict(self) -> dict:
        return {"duration_s": self.duration_s, "interval_ms": self.interval_ms}


@dataclass(frozen=True)
class LoadSchedule:
    """A piecewise-constant offered-load profile for the load generator.

    Serialises canonically (compact sorted JSON) exactly like a
    :class:`~repro.faults.plan.FaultPlan`, so a schedule embeds into
    :class:`ServeConfig.load_schedule` as one scalar string and the cell
    stays content-addressable.  When set, the schedule *replaces*
    ``message_interval_ms``/``messages_per_client`` pacing: each client
    sends at the phase-local interval (± ``arrival_jitter``) until the
    phases run out.
    """

    phases: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(self.phases))
        for phase in self.phases:
            if not isinstance(phase, LoadPhase):
                raise TypeError(f"phases must be LoadPhase, got {phase!r}")
        if len(self.phases) > 64:
            raise ValueError(f"load schedule capped at 64 phases, got {len(self.phases)}")

    @property
    def is_empty(self) -> bool:
        return not self.phases

    def total_duration_s(self) -> float:
        return sum(p.duration_s for p in self.phases)

    def interval_at(self, t_s: float) -> float | None:
        """The send interval (ms) in force at offset ``t_s``, or ``None``
        once every phase has elapsed."""
        start = 0.0
        for phase in self.phases:
            if t_s < start + phase.duration_s:
                return phase.interval_ms
            start += phase.duration_s
        return None

    def to_dict(self) -> dict:
        return {"phases": [p.to_dict() for p in self.phases]}

    def to_config(self) -> str:
        """Compact sorted-JSON string, embeddable as a config scalar."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "LoadSchedule":
        return cls(
            phases=tuple(
                LoadPhase(
                    duration_s=float(p["duration_s"]),
                    interval_ms=float(p["interval_ms"]),
                )
                for p in data.get("phases", ())
            )
        )

    @classmethod
    def from_config(cls, text: str) -> "LoadSchedule":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"load schedule must be a JSON object, got {data!r}")
        return cls.from_dict(data)


@dataclass(frozen=True)
class ServeConfig:
    """Parameters of one live serve/loadtest run (JSON-scalar fields only)."""

    #: Chat rooms the load generator populates.
    rooms: int = 2
    #: Clients per room; each message fans out to every room member
    #: (sender included), so one room moves ``clients² × messages``
    #: deliveries — the paper's VolanoMark arithmetic.
    clients_per_room: int = 8
    #: Messages each client sends over the run.
    messages_per_client: int = 10
    #: Open-loop arrival period per client, milliseconds.  Arrivals are
    #: scheduled from the clock, not from completions, so an overloaded
    #: server sees queue growth instead of a self-throttling client.
    message_interval_ms: float = 2.0
    #: ± fractional jitter on each arrival gap (deterministic per seed).
    arrival_jitter: float = 0.3
    #: Extra payload bytes padded onto every chat message.
    payload_bytes: int = 32
    #: Requests a picked handler may process per dispatch slice before
    #: the executor re-enters the scheduling policy.
    batch: int = 8
    #: Admission bound: total queued requests across all sessions.
    #: Arrivals beyond it are shed with an ``{"op": "shed"}`` reply.
    max_pending: int = 4096
    #: Per-session outbound queue bound (messages).  A slow consumer's
    #: overflowing fan-out is dropped (and counted), never buffered
    #: without bound — the backpressure stage.
    session_outbox: int = 1024
    #: Hard wall-clock deadline for the whole run, seconds.  Clients
    #: stop sending and waiting at the deadline; whatever completed by
    #: then is the result.  The CI smoke job uses a 5-second burst.
    duration_s: float = 10.0
    #: Seed for the deterministic arrival schedule.
    seed: int = 42
    #: TCP port to bind (0 = ephemeral, the default for loadtests).
    port: int = 0
    #: How long a client waits for in-flight fan-out after its QUIT,
    #: seconds, before cancelling its receive loop.
    drain_grace_s: float = 1.0
    #: Per-request deadline, milliseconds, measured from admission to
    #: dispatch.  A request still queued past it is answered with
    #: ``{"op": "expired"}`` instead of being served.  0 disables.
    request_deadline_ms: float = 0.0
    #: Fault plan for live chaos runs: a named plan, inline canonical
    #: JSON, or ``@file`` (see :func:`repro.faults.resolve_plan`).
    #: "" = no chaos.  Only ``overload`` / ``executor_crash`` faults
    #: apply to live serving.
    fault_plan: str = ""
    #: Offered-load profile: canonical :class:`LoadSchedule` JSON.  When
    #: set, clients pace from the schedule's phases instead of the flat
    #: ``message_interval_ms`` × ``messages_per_client`` plan (those two
    #: fields are ignored).  "" = flat load.
    load_schedule: str = ""

    def schedule(self) -> "LoadSchedule":
        """The parsed :class:`LoadSchedule` (empty when unset)."""
        if not self.load_schedule:
            return LoadSchedule()
        return LoadSchedule.from_config(self.load_schedule)

    @property
    def clients(self) -> int:
        """Total live connections the load generator opens."""
        return self.rooms * self.clients_per_room

    @property
    def messages_expected(self) -> int:
        """Messages the generator will offer over an unshed run."""
        return self.clients * self.messages_per_client

    @property
    def deliveries_expected(self) -> int:
        """Client-bound fan-out deliveries of an unshed, undropped run."""
        return self.rooms * self.clients_per_room**2 * self.messages_per_client

    def with_rooms(self, rooms: int) -> "ServeConfig":
        return replace(self, rooms=rooms)
