"""repro.serve — live request serving driven by the pluggable schedulers.

The simulator asks "how would this policy behave on 2001 hardware?";
this package asks "what does this policy do to a real server's latency
tail *right now*?"  A :class:`SchedulerExecutor` hosts any registered
:class:`~repro.sched.base.Scheduler` unmodified as the dispatch policy
of an asyncio chat server (a live VolanoMark), and the deterministic
open-loop load generator turns runs into comparable, harness-cacheable
cells.  See ``docs/serving.md``.
"""

from .config import LoadPhase, LoadSchedule, ServeConfig
from .executor import SchedulerExecutor
from .loadgen import ClientStats, LoadReport, run_loadgen
from .metrics import DepthTracker, LatencySummary, percentile
from .server import ChatServer, Session
from .workload import LoadtestResult, run_serve_loadtest

__all__ = [
    "ServeConfig",
    "LoadPhase",
    "LoadSchedule",
    "SchedulerExecutor",
    "ChatServer",
    "Session",
    "ClientStats",
    "LoadReport",
    "run_loadgen",
    "LoadtestResult",
    "run_serve_loadtest",
    "DepthTracker",
    "LatencySummary",
    "percentile",
]
