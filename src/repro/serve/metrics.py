"""Latency/throughput metrics for live serve runs.

The live pipeline measures three things the simulator cannot:

* **request latency** — client-stamped round-trip of every chat message
  through the server's admission queue, scheduler pick, fan-out, and
  socket writes (p50/p95/p99, the numbers a serving system is judged by);
* **scheduler pick latency** — wall nanoseconds spent inside the
  policy's ``schedule()`` per dispatch, the userspace analogue of the
  paper's cycles-per-schedule Figure 5;
* **queue depth** — pending requests observed at every dispatch, the
  backpressure signal admission control acts on.

Everything reduces to plain floats so a live run exports through the
same :class:`~repro.harness.CellResult` metrics dict as a simulated one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["percentile", "LatencySummary", "DepthTracker"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default for the common cases without
    the dependency; 0.0 on an empty sample set (a fully shed run).
    """
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile wants 0..100, got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass(frozen=True)
class LatencySummary:
    """p50/p95/p99/mean/max over one set of samples (any unit)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return LatencySummary(
            count=len(samples),
            mean=sum(samples) / len(samples),
            p50=percentile(samples, 50),
            p95=percentile(samples, 95),
            p99=percentile(samples, 99),
            max=float(max(samples)),
        )

    def to_dict(self, prefix: str = "") -> dict[str, Any]:
        return {
            f"{prefix}count": self.count,
            f"{prefix}mean": self.mean,
            f"{prefix}p50": self.p50,
            f"{prefix}p95": self.p95,
            f"{prefix}p99": self.p99,
            f"{prefix}max": self.max,
        }


@dataclass
class DepthTracker:
    """Constant-space queue-depth accounting (avg/max over all samples)."""

    samples: int = 0
    total: int = 0
    peak: int = 0
    #: Bounded reservoir of recent depths for percentile reporting.
    recent: list[int] = field(default_factory=list)
    reservoir: int = 4096

    def observe(self, depth: int) -> None:
        self.samples += 1
        self.total += depth
        if depth > self.peak:
            self.peak = depth
        if len(self.recent) < self.reservoir:
            self.recent.append(depth)

    @property
    def average(self) -> float:
        return self.total / self.samples if self.samples else 0.0

    def to_dict(self, prefix: str = "") -> dict[str, Any]:
        return {
            f"{prefix}avg": self.average,
            f"{prefix}max": self.peak,
            f"{prefix}samples": self.samples,
        }
