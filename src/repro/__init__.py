"""repro — a reproduction of *Scalable Linux Scheduling* (Molloy &
Honeyman, CITI TR 01-7 / 2001).

The package contains:

* :mod:`repro.kernel` — a discrete-event simulator of a Linux-2.3.99-era
  machine: tasks, 10 ms timer ticks, quanta, wait queues, an SMP global
  runqueue lock, and a calibrated cycle cost model;
* :mod:`repro.sched` — the scheduler interface, the stock O(n)
  goodness-scan scheduler ("reg"), and alternative designs;
* :mod:`repro.core` — the **ELSC scheduler**, the paper's contribution:
  a 30-list table sorted by static goodness with ``top``/``next_top``
  cursors;
* :mod:`repro.net` — loopback socket pairs;
* :mod:`repro.workloads` — VolanoMark (the paper's stress test), a
  kernel-compile model (the paper's light-load test), a web-server model
  (future work §8), and synthetic mixes;
* :mod:`repro.analysis` — metrics and paper-style table rendering;
* :mod:`repro.harness` — the parallel experiment harness: hashed
  :class:`~repro.harness.RunSpec` cells, a content-addressed result
  cache, and a process-pool :class:`~repro.harness.ParallelRunner`
  (see ``docs/harness.md``).

Quickstart::

    from repro import ELSCScheduler, MachineSpec, Simulator
    from repro.workloads import VolanoConfig, run_volanomark

    result = run_volanomark(
        scheduler_factory=ELSCScheduler,
        spec=MachineSpec.up(),
        config=VolanoConfig(rooms=5),
    )
    print(result.throughput, "messages/second")
"""

from .core import ELSCRunqueueTable, ELSCScheduler
from .kernel import (
    CPU,
    Channel,
    Clock,
    CostModel,
    KernelHandle,
    Machine,
    MachineSpec,
    MMStruct,
    RunSummary,
    SchedPolicy,
    SimResult,
    SimulationError,
    Simulator,
    SpinYieldLock,
    Task,
    TaskState,
    TraceKind,
    Tracer,
    WaitQueue,
    make_machine,
    sched_setscheduler,
    set_priority,
)
from .sched import (
    CFSScheduler,
    ClutchScheduler,
    HeapScheduler,
    MultiQueueScheduler,
    O1Scheduler,
    RelaxedMQScheduler,
    SchedDecision,
    Scheduler,
    SchedStats,
    VanillaScheduler,
)

__version__ = "1.0.0"

from .harness import (  # noqa: E402 — needs __version__ for cache stamps
    CellResult,
    ParallelRunner,
    ResultCache,
    RunSpec,
)

__all__ = [
    # harness
    "RunSpec",
    "CellResult",
    "ParallelRunner",
    "ResultCache",
    "__version__",
    # schedulers
    "ELSCScheduler",
    "ELSCRunqueueTable",
    "VanillaScheduler",
    "HeapScheduler",
    "CFSScheduler",
    "ClutchScheduler",
    "MultiQueueScheduler",
    "O1Scheduler",
    "RelaxedMQScheduler",
    "Scheduler",
    "SchedDecision",
    "SchedStats",
    # machine
    "Machine",
    "MachineSpec",
    "Simulator",
    "SimResult",
    "SimulationError",
    "RunSummary",
    "make_machine",
    "CostModel",
    "Clock",
    "CPU",
    "Task",
    "TaskState",
    "SchedPolicy",
    "MMStruct",
    "Channel",
    "WaitQueue",
    "SpinYieldLock",
    "KernelHandle",
    "Tracer",
    "TraceKind",
    "set_priority",
    "sched_setscheduler",
]
