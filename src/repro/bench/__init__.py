"""Perf-trajectory benchmarking: the ``repro bench`` machinery.

The repo's simulated results are deterministic, but *how fast the
simulator produces them* is a first-class deliverable of its own: the
hot-path work (array-backed run queues, cached goodness weights, probe
batching) only stays honest if every PR can re-measure the same pinned
cell matrix and diff itself against the committed trajectory file.

Three modules:

:mod:`~repro.bench.matrix`
    the pinned cell matrix — which (workload, scheduler, machine,
    config) cells run, which before/after pairs are timed, and the
    content hash that stamps a BENCH file as produced by *this*
    matrix definition.
:mod:`~repro.bench.runner`
    executes the matrix (metered cells through the harness's
    :class:`~repro.harness.runner.ParallelRunner`, before/after pairs
    via interleaved direct timing, plus one cluster-loadtest
    throughput row) into a report dict.
:mod:`~repro.bench.report`
    the schema-versioned ``BENCH_<n>.json`` file format — write, load
    (with a version gate), pick-latency percentiles, and the
    ``compare`` logic with its regression threshold.

See docs/performance.md for the methodology and a worked read-through
of a BENCH file.
"""

from .matrix import (
    BENCH_ID,
    SCHEMA_VERSION,
    BenchCell,
    BenchPair,
    cluster_row_config,
    matrix_cells,
    matrix_hash,
    pair_cells,
)
from .report import (
    compare_reports,
    format_comparison,
    load_report,
    pick_latency_percentiles,
    write_report,
)
from .runner import run_bench

__all__ = [
    "BENCH_ID",
    "SCHEMA_VERSION",
    "BenchCell",
    "BenchPair",
    "cluster_row_config",
    "matrix_cells",
    "matrix_hash",
    "pair_cells",
    "compare_reports",
    "format_comparison",
    "load_report",
    "pick_latency_percentiles",
    "write_report",
    "run_bench",
]
