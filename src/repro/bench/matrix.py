"""The pinned BENCH cell matrix and its content hash.

A BENCH file is only comparable to another BENCH file if both ran the
same cells with the same configs.  This module *is* that definition:
every cell, pair, and the cluster row are spelled out here as frozen
descriptors, and :func:`matrix_hash` folds their canonical JSON into a
SHA-256 that gets stamped into the report.  ``repro bench compare``
refuses to diff files whose hashes disagree unless told otherwise —
a wall-clock delta between different matrices is noise, not signal.

The matrix is deliberately smoke-scale (the full run takes minutes,
not hours): the point is a *trajectory* — the same cells re-measured
every PR — not an exhaustive sweep.  ``repro sweep`` remains the tool
for result-space exploration; ``repro bench`` measures the simulator
itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..harness.registry import SCHEDULERS

__all__ = [
    "SCHEMA_VERSION",
    "BENCH_ID",
    "BenchCell",
    "BenchPair",
    "matrix_cells",
    "pair_cells",
    "cluster_row_config",
    "matrix_hash",
]

#: BENCH file format version; bumped on any schema change so stale
#: tooling fails loudly instead of misreading fields.
SCHEMA_VERSION = 1

#: The trajectory point this tree produces (PR number of record).
BENCH_ID = "BENCH_10"

#: Machine axes of the matrix: the uniprocessor fast paths and the SMP
#: paths are different code (see sched/vanilla.py's ``_fold_proc``), so
#: both must stay on the trajectory.
MACHINES = ("UP", "4P")

#: Workload axes: one scan-bound simulated benchmark, one fork-heavy
#: simulated benchmark, one live asyncio serving workload.
MATRIX_WORKLOADS = ("volano", "kernbench", "serve")

#: Pinned per-workload configs.  Small enough that the full matrix is
#: minutes of wall clock, large enough that a cell's wall time is
#: dominated by simulation work rather than setup.
MATRIX_CONFIGS: dict[str, dict[str, Any]] = {
    "volano": {"rooms": 6, "users_per_room": 15, "messages_per_user": 5},
    "kernbench": {"files": 600, "jobs": 4, "mean_compile_seconds": 0.3,
                  "link_seconds": 1.0},
    "serve": {"rooms": 2, "clients_per_room": 4, "messages_per_client": 6,
              "duration_s": 3.0},
}

#: Simulated workloads replay a seeded discrete-event run: their stats
#: and metrics are exactly reproducible and ``compare`` gates them on
#: bit-identity.  The live serve workload (and the cluster row) run on
#: real clocks and sockets; only their wall/throughput trend is gated.
DETERMINISTIC_WORKLOADS = frozenset({"volano", "kernbench"})

#: The scan-heavy volano cell used by the before/after pairs: 600 chat
#: users keep the run queue long, so scheduler pick cost dominates the
#: wall clock — the configuration where the array-backed runqueue work
#: is measurable above container timing noise (see docs/performance.md).
PAIR_VOLANO_CONFIG: dict[str, Any] = {
    "rooms": 20, "users_per_room": 30, "messages_per_user": 3,
}

#: A lighter volano cell for the probe-batching pair (the probe
#: pipeline's cost is per-event, not per-queued-task, so a long run
#: queue buys nothing there).
BATCH_VOLANO_CONFIG: dict[str, Any] = {
    "rooms": 8, "users_per_room": 16, "messages_per_user": 4,
}


@dataclass(frozen=True)
class BenchCell:
    """One metered matrix cell (a ``RunSpec`` plus bench bookkeeping)."""

    workload: str
    scheduler: str
    machine: str
    config: tuple = field(default=())
    deterministic: bool = False
    #: Cells marked True form the reduced CI matrix (``--smoke``).
    smoke: bool = False

    @property
    def cell_id(self) -> str:
        return f"cell/{self.workload}/{self.scheduler}/{self.machine}"

    def descriptor(self) -> dict[str, Any]:
        """Canonical identity dict — the unit :func:`matrix_hash` folds."""
        return {
            "id": self.cell_id,
            "kind": "cell",
            "workload": self.workload,
            "scheduler": self.scheduler,
            "machine": self.machine,
            "config": dict(self.config),
            "deterministic": self.deterministic,
        }


@dataclass(frozen=True)
class BenchPair:
    """One before/after hot-path pair, timed interleaved.

    ``dimension`` names the optimisation under test; the runner maps it
    to the private before-side factory (``impl="list"``,
    ``table_impl="list"``, or a probe batch-size of 1).  Those
    before-sides are deliberately *not* in the scheduler registry — the
    registry is the experiment vocabulary, and the legacy layouts exist
    only as the measured baseline and behavioural cross-check.
    """

    dimension: str  # "runqueue" | "elsc-table" | "probe-batch" | "smp-weights"
    workload: str
    scheduler: str
    machine: str
    config: tuple = field(default=())
    #: Both sides must produce bit-identical simulation results; the
    #: runner records (and ``compare`` gates) the check.
    identical_expected: bool = True

    @property
    def cell_id(self) -> str:
        return f"pair/{self.dimension}/{self.scheduler}/{self.machine}"

    def descriptor(self) -> dict[str, Any]:
        return {
            "id": self.cell_id,
            "kind": "pair",
            "dimension": self.dimension,
            "workload": self.workload,
            "scheduler": self.scheduler,
            "machine": self.machine,
            "config": dict(self.config),
            "identical_expected": self.identical_expected,
        }


def _cfg(mapping: dict[str, Any]) -> tuple:
    return tuple(sorted(mapping.items()))


def matrix_cells(smoke: bool = False) -> list[BenchCell]:
    """The pinned metered matrix: every registered scheduler × UP/4P ×
    volano/kernbench/serve.  ``smoke=True`` returns the reduced CI
    subset (deterministic workloads, UP, the two paper schedulers)."""
    cells = []
    for workload in MATRIX_WORKLOADS:
        config = _cfg(MATRIX_CONFIGS[workload])
        deterministic = workload in DETERMINISTIC_WORKLOADS
        for scheduler in SCHEDULERS:
            for machine in MACHINES:
                cells.append(
                    BenchCell(
                        workload=workload,
                        scheduler=scheduler,
                        machine=machine,
                        config=config,
                        deterministic=deterministic,
                        smoke=(
                            deterministic
                            and machine == "UP"
                            and scheduler in ("reg", "elsc")
                        ),
                    )
                )
    if smoke:
        return [c for c in cells if c.smoke]
    return cells


def pair_cells(smoke: bool = False) -> list[BenchPair]:
    """The before/after hot-path pairs (see each dimension's module).

    ``smoke=True`` keeps only the acceptance pair — interleaved A/B
    timing is robust to host noise, so this is the one wall-clock gate
    CI can apply meaningfully (docs/performance.md)."""
    scan_heavy = _cfg(PAIR_VOLANO_CONFIG)
    if smoke:
        return [BenchPair("runqueue", "volano", "reg", "UP", scan_heavy)]
    return [
        # sched/vanilla.py: contiguous array + cached rq_weight vs the
        # historical linked-list walk.  The UP cell is the acceptance
        # pair: the affinity bonus folds into the cached weight there.
        BenchPair("runqueue", "volano", "reg", "UP", scan_heavy),
        BenchPair("runqueue", "volano", "reg", "4P", scan_heavy),
        # core/table.py: ELSCRunqueueTable (array lists + bitmaps) vs
        # ELSCListTable (linked nodes + linear cursor repair).
        BenchPair("elsc-table", "volano", "elsc", "UP", scan_heavy),
        # obs/probe.py: batched event emission vs per-event dispatch
        # (batch size forced to 1 on the before side).
        BenchPair(
            "probe-batch", "volano", "reg", "UP", _cfg(BATCH_VOLANO_CONFIG)
        ),
        # sched/vanilla.py: per-CPU pre-folded weight arrays vs the
        # per-element ``processor`` re-test on the SMP goodness scan
        # (``smp_fold=False`` keeps the dynamic re-test alive as the
        # before side).
        BenchPair("smp-weights", "volano", "reg", "4P", scan_heavy),
    ]


def cluster_row_config() -> dict[str, Any]:
    """The pinned cluster-loadtest throughput row (real processes and
    sockets: never deterministic, always trend-gated only)."""
    return {
        "shards": 2,
        "scheduler": "elsc",
        "machine": "UP",
        "rooms": 4,
        "clients_per_room": 4,
        "messages_per_client": 10,
        "duration_s": 10.0,
        "seed": 42,
    }


def matrix_hash(smoke: bool = False) -> str:
    """SHA-256 over the canonical JSON of every descriptor in the
    matrix — the stamp that makes two BENCH files comparable.

    The full and smoke matrices hash differently on purpose: a smoke
    file is only comparable to another smoke file (``compare`` can
    still do a subset diff across them with ``--allow-matrix-drift``).
    """
    descriptors = [c.descriptor() for c in matrix_cells(smoke=smoke)]
    descriptors += [p.descriptor() for p in pair_cells(smoke=smoke)]
    if not smoke:
        descriptors.append(
            {"id": "cluster/loadtest", "kind": "cluster",
             "config": cluster_row_config()}
        )
    canonical = json.dumps(descriptors, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
