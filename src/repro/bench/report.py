"""The ``BENCH_<n>.json`` file format: write, load, diff.

A BENCH file is one point on the repo's performance trajectory::

    {
      "schema_version": 1,
      "bench_id": "BENCH_8",
      "matrix_hash": "<sha256 of the pinned matrix definition>",
      "smoke": false,
      "repeats": 5,
      "cells":   [ ...one record per metered matrix cell... ],
      "pairs":   [ ...one record per before/after hot-path pair... ],
      "cluster": { ...the cluster-loadtest throughput row... }
    }

Every field is documented in docs/performance.md; the schema is gated
by ``schema_version`` (:func:`load_report` refuses files it cannot
read) and stamped by ``matrix_hash`` (:func:`compare_reports` refuses
to diff different matrices unless explicitly allowed).

Comparison separates the two kinds of signal a BENCH file carries:

* **bit-identity** — deterministic cells' simulation fingerprints
  (SchedStats counters + workload metrics) must match *exactly*
  between two files; any drift means behaviour changed, which is a
  hard failure regardless of threshold.  Robust across machines.
* **wall trend** — wall-clock deltas beyond ``threshold`` (default
  15%) flag a regression.  Only meaningful between runs on the same
  machine; CI therefore wall-gates two same-runner passes and
  sim-gates against the committed file (``--sim-only``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from .matrix import SCHEMA_VERSION

__all__ = [
    "write_report",
    "load_report",
    "pick_latency_percentiles",
    "compare_reports",
    "format_comparison",
]

#: Wall-clock regression threshold ``compare`` applies by default.
DEFAULT_THRESHOLD = 0.15


def write_report(report: dict[str, Any], path: Union[str, Path]) -> Path:
    """Serialise a bench report, stable key order, trailing newline."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def load_report(path: Union[str, Path]) -> dict[str, Any]:
    """Load and version-gate a BENCH file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: BENCH schema_version {version!r} is not the "
            f"supported version {SCHEMA_VERSION}; re-generate the file "
            "with this tree's `repro bench run`"
        )
    for key in ("bench_id", "matrix_hash", "cells"):
        if key not in data:
            raise ValueError(f"{path}: BENCH file is missing {key!r}")
    return data


def pick_latency_percentiles(
    hist: dict[str, int], points: tuple[int, ...] = (50, 90, 99)
) -> dict[str, int]:
    """Percentile *upper bounds* from a power-of-two latency histogram.

    The metrics probe buckets a decision's cycle cost by
    ``cost.bit_length()`` — bucket ``b`` counts costs in
    ``[2^(b-1), 2^b - 1]`` (bucket 0 is exactly cost 0).  The tightest
    value a percentile can be pinned to is therefore its bucket's upper
    bound, which is what this returns: ``p99 = 1023`` reads as "99% of
    picks cost at most 1023 cycles".
    """
    total = sum(hist.values())
    if total == 0:
        return {f"p{p}": 0 for p in points}
    buckets = sorted((int(b), n) for b, n in hist.items())
    out: dict[str, int] = {}
    for p in points:
        need = total * p / 100.0
        seen = 0
        for bucket, count in buckets:
            seen += count
            if seen >= need:
                out[f"p{p}"] = (1 << bucket) - 1 if bucket else 0
                break
    return out


# -- comparison --------------------------------------------------------------


def _timed_rows(report: dict[str, Any], metric: str) -> dict[str, float]:
    """Flatten every timed row of a report to ``id → seconds``.

    ``metric`` is ``"wall"`` or ``"cpu"``; rows that never recorded the
    requested metric (the multi-process cluster row has no meaningful
    single-process CPU time, and older files may predate ``cpu``) fall
    back to wall seconds.
    """
    key, fallback = f"{metric}_seconds", "wall_seconds"

    def read(row: dict[str, Any]) -> float:
        return row.get(key, row[fallback])

    rows: dict[str, float] = {}
    for cell in report.get("cells", []):
        rows[cell["id"]] = read(cell)
    for pair in report.get("pairs", []):
        rows[pair["id"] + "/before"] = read(pair["before"])
        rows[pair["id"] + "/after"] = read(pair["after"])
    cluster = report.get("cluster")
    if cluster:
        rows[cluster["id"]] = cluster["wall_seconds"]
    return rows


def _fingerprints(report: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Deterministic cells' simulation fingerprints, ``id → fingerprint``."""
    return {
        cell["id"]: cell["fingerprint"]
        for cell in report.get("cells", [])
        if cell.get("deterministic") and "fingerprint" in cell
    }


def compare_reports(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    sim_only: bool = False,
    allow_matrix_drift: bool = False,
    metric: str = "wall",
) -> dict[str, Any]:
    """Diff two bench reports; see the module docstring for semantics.

    ``metric`` selects the timed scalar: ``"wall"`` (elapsed, the
    default) or ``"cpu"`` (process CPU time, far less sensitive to a
    noisy shared host — what CI's same-runner gate uses).

    Returns a dict with ``rows`` (per-id wall deltas), ``regressions``,
    ``identity_failures``, ``pair_notes``, ``skipped`` (ids present in
    only one file), and ``ok``.
    """
    if old["matrix_hash"] != new["matrix_hash"] and not allow_matrix_drift:
        raise ValueError(
            "matrix_hash differs between the two BENCH files — they did "
            "not run the same pinned matrix, so a delta is meaningless. "
            "Pass --allow-matrix-drift to diff the common subset anyway."
        )

    identity_failures: list[str] = []
    old_fp, new_fp = _fingerprints(old), _fingerprints(new)
    for cell_id in sorted(old_fp.keys() & new_fp.keys()):
        if old_fp[cell_id] != new_fp[cell_id]:
            changed = _fingerprint_drift(old_fp[cell_id], new_fp[cell_id])
            identity_failures.append(
                f"{cell_id}: deterministic simulation diverged ({changed})"
            )

    if metric not in ("wall", "cpu"):
        raise ValueError(f"metric must be wall|cpu, got {metric!r}")
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    if not sim_only:
        old_walls, new_walls = _timed_rows(old, metric), _timed_rows(
            new, metric
        )
        for row_id in sorted(old_walls.keys() & new_walls.keys()):
            a, b = old_walls[row_id], new_walls[row_id]
            delta = (b - a) / a if a else 0.0
            regressed = delta > threshold
            rows.append(
                {"id": row_id, "old": a, "new": b,
                 "delta_pct": delta * 100.0, "regressed": regressed}
            )
            if regressed:
                regressions.append(
                    f"{row_id}: {metric} {a:.3f}s → {b:.3f}s "
                    f"(+{delta * 100.0:.1f}% > {threshold * 100.0:.0f}%)"
                )
        old_cl, new_cl = old.get("cluster"), new.get("cluster")
        if old_cl and new_cl and old_cl.get("throughput"):
            drop = (old_cl["throughput"] - new_cl["throughput"]) / old_cl[
                "throughput"
            ]
            if drop > threshold:
                regressions.append(
                    f"{new_cl['id']}: throughput "
                    f"{old_cl['throughput']:.1f} → {new_cl['throughput']:.1f} "
                    f"echoes/s (-{drop * 100.0:.1f}%)"
                )

    pair_notes: list[str] = []
    for pair in new.get("pairs", []):
        if pair.get("identical_expected") and not pair.get("identical"):
            identity_failures.append(
                f"{pair['id']}: before/after sides are no longer "
                "bit-identical"
            )
        pair_notes.append(
            f"{pair['id']}: {pair['improvement_pct']:+.1f}% "
            f"({pair['before']['wall_seconds']:.3f}s → "
            f"{pair['after']['wall_seconds']:.3f}s)"
        )

    old_ids = set(_timed_rows(old, "wall")) | set(old_fp)
    new_ids = set(_timed_rows(new, "wall")) | set(new_fp)
    skipped = sorted(old_ids ^ new_ids)

    return {
        "metric": metric,
        "rows": rows,
        "regressions": regressions,
        "identity_failures": identity_failures,
        "pair_notes": pair_notes,
        "skipped": skipped,
        "threshold": threshold,
        "ok": not regressions and not identity_failures,
    }


def _fingerprint_drift(old: dict[str, Any], new: dict[str, Any]) -> str:
    """Name the first few fingerprint fields that differ."""
    drifted = []
    for section in ("stats", "metrics"):
        a, b = old.get(section, {}), new.get(section, {})
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                drifted.append(f"{section}.{key}: {a.get(key)} → {b.get(key)}")
    head = "; ".join(drifted[:3])
    more = len(drifted) - 3
    return head + (f"; +{more} more" if more > 0 else "")


def format_comparison(result: dict[str, Any]) -> str:
    """Human-readable comparison table + verdict."""
    lines: list[str] = []
    rows = result["rows"]
    if rows:
        width = max(len(r["id"]) for r in rows)
        metric = result.get("metric", "wall")
        lines.append(
            f"{'cell':<{width}}  {f'old {metric} (s)':>12}  "
            f"{f'new {metric} (s)':>12}  Δ%"
        )
        for r in rows:
            flag = "  << REGRESSION" if r["regressed"] else ""
            lines.append(
                f"{r['id']:<{width}}  {r['old']:>12.3f}  {r['new']:>12.3f}  "
                f"{r['delta_pct']:+6.1f}{flag}"
            )
    if result["pair_notes"]:
        lines.append("")
        lines.append("before/after pairs (new file):")
        lines.extend(f"  {note}" for note in result["pair_notes"])
    if result["skipped"]:
        lines.append("")
        lines.append(
            f"skipped (present in only one file): {len(result['skipped'])}"
        )
    if result["identity_failures"]:
        lines.append("")
        lines.append("IDENTITY FAILURES (deterministic cells diverged):")
        lines.extend(f"  {msg}" for msg in result["identity_failures"])
    if result["regressions"]:
        lines.append("")
        lines.append(
            f"WALL REGRESSIONS (> {result['threshold'] * 100.0:.0f}%):"
        )
        lines.extend(f"  {msg}" for msg in result["regressions"])
    lines.append("")
    lines.append("OK" if result["ok"] else "FAIL")
    return "\n".join(lines)
