"""Execute the pinned BENCH matrix into a report dict.

Three kinds of timed row, three execution paths:

* **matrix cells** go through the harness's
  :class:`~repro.harness.runner.ParallelRunner` (``jobs=1``, no result
  cache — a cache hit's 0-second wall time is exactly what a benchmark
  must not record) with a dedicated JSONL manifest; the wall time comes
  from the manifest record the runner writes, so the number in the
  BENCH file is the same number every other harness consumer sees.
* **before/after pairs** are timed directly, *interleaved* (one before
  run, one after run, repeated ``repeats`` times, median of each
  side).  Interleaving is the methodology load-bearing part: container
  wall clocks drift by ±10% over seconds, and A/A/A/B/B/B timing
  folds that drift into the A-vs-B delta while A/B/A/B/A/B cancels
  it (docs/performance.md, "Methodology").
* the **cluster row** spawns the real sharded cluster (router + shard
  processes over TCP) once and records its end-to-end echo throughput.

Deterministic cells also record a simulation *fingerprint* (the full
SchedStats counter dict plus the workload's scalar metrics) so
``compare`` can gate bit-identity across machines, where wall clocks
cannot be compared at all.
"""

from __future__ import annotations

import asyncio
import json
import statistics
import time
from pathlib import Path
from typing import Any, Callable, Optional

from ..harness.registry import MACHINE_SPECS, SCHEDULERS, WORKLOADS
from ..harness.runner import ParallelRunner
from ..harness.spec import RunSpec
from ..kernel.params import CPU_HZ
from .matrix import (
    BENCH_ID,
    SCHEMA_VERSION,
    BenchCell,
    BenchPair,
    cluster_row_config,
    matrix_cells,
    matrix_hash,
    pair_cells,
)
from .report import pick_latency_percentiles

__all__ = ["run_bench", "run_matrix", "run_pair", "run_cluster_row"]

#: Interleaved repetitions per before/after pair side.
DEFAULT_REPEATS = 5

#: Where the bench run's harness manifest goes (kept apart from the
#: sweep manifest: bench rows must never be muddied by cache hits).
DEFAULT_BENCH_MANIFEST = Path("results") / "bench-manifest.jsonl"

LogFn = Callable[[str], None]


def _silent(_msg: str) -> None:  # pragma: no cover - trivial
    pass


# -- matrix cells ------------------------------------------------------------


def _manifest_walls(manifest_path: Path, since_line: int) -> dict[str, float]:
    """``spec key → best wall_seconds`` from records after ``since_line``.

    A cell run repeatedly keeps its *minimum* wall time: for a
    deterministic single-threaded computation the fastest observation
    is the one least polluted by interpreter warm-up and container
    scheduling noise (docs/performance.md, "Methodology")."""
    walls: dict[str, float] = {}
    if not manifest_path.exists():
        return walls
    lines = manifest_path.read_text(encoding="utf-8").splitlines()
    for line in lines[since_line:]:
        record = json.loads(line)
        if record.get("outcome", "ok") == "ok":
            key, wall = record["key"], record["wall_seconds"]
            walls[key] = min(walls.get(key, wall), wall)
    return walls


def _cell_record(
    cell: BenchCell, result: Any, wall_seconds: float, cpu_seconds: float
) -> dict[str, Any]:
    """One BENCH ``cells[]`` entry from a metered CellResult."""
    sim_elapsed = result.elapsed_seconds
    sim_cycles = int(sim_elapsed * CPU_HZ)
    obs = result.obs_metrics
    picks = obs.get("counters", {}).get("picks", 0)
    decision_total = obs.get("totals", {}).get("decision_cycles", 0)
    hist = obs.get("hists", {}).get("decision_cycles", {})
    record: dict[str, Any] = {
        "id": cell.cell_id,
        "workload": cell.workload,
        "scheduler": cell.scheduler,
        "machine": cell.machine,
        "config": dict(cell.config),
        "deterministic": cell.deterministic,
        "wall_seconds": round(wall_seconds, 6),
        "cpu_seconds": round(cpu_seconds, 6),
        "sim_elapsed_seconds": sim_elapsed,
        "sim_cycles": sim_cycles,
        "sim_cycles_per_wall_second": (
            round(sim_cycles / wall_seconds) if wall_seconds > 0 else 0
        ),
        "scheduler_fraction": result.scheduler_fraction,
        "throughput": result.throughput,
        "picks": picks,
        "mean_pick_cycles": (
            round(decision_total / picks, 3) if picks else 0.0
        ),
        "pick_latency_cycles": pick_latency_percentiles(hist),
    }
    if cell.deterministic:
        record["fingerprint"] = {
            "stats": dict(result.stats),
            "metrics": dict(result.metrics),
        }
    return record


#: Runs per matrix cell; the best (minimum) wall time is recorded.
DEFAULT_CELL_REPEATS = 3


def run_matrix(
    cells: list[BenchCell],
    manifest_path: Path = DEFAULT_BENCH_MANIFEST,
    log: LogFn = _silent,
    cell_repeats: int = DEFAULT_CELL_REPEATS,
) -> list[dict[str, Any]]:
    """Run the metered matrix cells serially through the harness.

    Each cell runs ``cell_repeats`` times (no cache, so every run is a
    real computation) and keeps its best wall time; the simulation
    outputs of the final run populate the record (identical across
    runs for deterministic cells — the determinism tests pin that).
    """
    specs = [
        RunSpec(
            workload=c.workload,
            scheduler=c.scheduler,
            machine=c.machine,
            config=c.config,
        )
        for c in cells
    ]
    since = 0
    if manifest_path.exists():
        since = len(
            manifest_path.read_text(encoding="utf-8").splitlines()
        )
    runner = ParallelRunner(
        jobs=1, cache=None, manifest_path=manifest_path, metrics=True
    )
    records: list[dict[str, Any]] = []
    for cell, spec in zip(cells, specs):
        log(f"  {cell.cell_id} ...")
        result = None
        cpu_best = float("inf")
        for _rep in range(max(1, cell_repeats)):
            cpu_start = time.process_time()
            result = runner.run([spec])[0]
            cpu_best = min(cpu_best, time.process_time() - cpu_start)
        walls = _manifest_walls(manifest_path, since)
        wall = walls.get(spec.key, 0.0)
        records.append(_cell_record(cell, result, wall, cpu_best))
        log(
            f"  {cell.cell_id}: {wall:.3f}s wall / {cpu_best:.3f}s cpu "
            f"(best of {cell_repeats})"
        )
    return records


# -- before/after pairs ------------------------------------------------------


def _pair_sides(
    pair: BenchPair,
) -> tuple[Callable[[], Any], Callable[[], Any], bool, str, str]:
    """(before_factory, after_factory, metered, before_label, after_label).

    The before sides are the private legacy code paths — deliberately
    absent from the scheduler registry (they are baselines and
    cross-checks, not experiment vocabulary).
    """
    if pair.dimension == "runqueue":
        from ..sched.vanilla import VanillaScheduler

        return (
            lambda: VanillaScheduler(impl="list"),
            lambda: VanillaScheduler(),
            False,
            "linked-list walk (impl=list)",
            "array + cached rq_weight (impl=array)",
        )
    if pair.dimension == "elsc-table":
        from ..core.elsc import ELSCScheduler

        return (
            lambda: ELSCScheduler(table_impl="list"),
            lambda: ELSCScheduler(),
            False,
            "linked table (table_impl=list)",
            "array table + bitmaps (table_impl=array)",
        )
    if pair.dimension == "probe-batch":
        factory = SCHEDULERS[pair.scheduler]
        return (
            factory,
            factory,
            True,
            "per-event emission (batch_size=1)",
            "batched emission (default batch)",
        )
    if pair.dimension == "smp-weights":
        from ..sched.vanilla import VanillaScheduler

        return (
            lambda: VanillaScheduler(smp_fold=False),
            lambda: VanillaScheduler(),
            False,
            "per-element processor re-test (smp_fold=False)",
            "per-CPU pre-folded weight arrays (smp_fold=True)",
        )
    raise ValueError(f"unknown pair dimension {pair.dimension!r}")


def _timed_run(
    pair: BenchPair,
    factory: Callable[[], Any],
    metered: bool,
    batch_size: Optional[int],
) -> tuple[float, float, dict[str, Any]]:
    """One workload run: (wall seconds, cpu seconds, sim fingerprint)."""
    workload = WORKLOADS[pair.workload]
    config = workload.config_cls(**dict(pair.config))
    spec = MACHINE_SPECS[pair.machine]
    probe = None
    patched = None
    if metered:
        from ..obs import probe as probe_mod
        from ..obs.metrics import MetricsProbe

        probe = MetricsProbe()
        if batch_size is not None:
            patched = probe_mod.DEFAULT_BATCH_SIZE
            probe_mod.DEFAULT_BATCH_SIZE = batch_size
    try:
        start = time.perf_counter()
        cpu_start = time.process_time()
        raw = workload.run(factory, spec, config, metrics=probe)
        cpu = time.process_time() - cpu_start
        wall = time.perf_counter() - start
    finally:
        if patched is not None:
            from ..obs import probe as probe_mod

            probe_mod.DEFAULT_BATCH_SIZE = patched
    stats = raw.sim.stats
    fingerprint = {
        "stats": {
            name: getattr(stats, name)
            for name in type(stats).__dataclass_fields__
        },
        "metrics": workload.extract(raw),
    }
    return wall, cpu, fingerprint


def run_pair(
    pair: BenchPair,
    repeats: int = DEFAULT_REPEATS,
    log: LogFn = _silent,
) -> dict[str, Any]:
    """Time one before/after pair, interleaved, median of ``repeats``."""
    before_factory, after_factory, metered, before_label, after_label = (
        _pair_sides(pair)
    )
    before_walls: list[float] = []
    after_walls: list[float] = []
    before_cpus: list[float] = []
    after_cpus: list[float] = []
    before_fp: Optional[dict[str, Any]] = None
    after_fp: Optional[dict[str, Any]] = None
    for rep in range(repeats):
        wall, cpu, fp = _timed_run(
            pair, before_factory, metered, 1 if metered else None
        )
        before_walls.append(wall)
        before_cpus.append(cpu)
        before_fp = before_fp or fp
        wall, cpu, fp = _timed_run(pair, after_factory, metered, None)
        after_walls.append(wall)
        after_cpus.append(cpu)
        after_fp = after_fp or fp
        log(
            f"  {pair.cell_id} rep {rep + 1}/{repeats}: "
            f"{before_walls[-1]:.3f}s vs {after_walls[-1]:.3f}s"
        )
    before_med = statistics.median(before_walls)
    after_med = statistics.median(after_walls)
    before_cpu = statistics.median(before_cpus)
    after_cpu = statistics.median(after_cpus)
    improvement = (
        (before_med - after_med) / before_med * 100.0 if before_med else 0.0
    )
    improvement_cpu = (
        (before_cpu - after_cpu) / before_cpu * 100.0 if before_cpu else 0.0
    )
    return {
        "id": pair.cell_id,
        "dimension": pair.dimension,
        "workload": pair.workload,
        "scheduler": pair.scheduler,
        "machine": pair.machine,
        "config": dict(pair.config),
        "repeats": repeats,
        "identical_expected": pair.identical_expected,
        "identical": before_fp == after_fp,
        "before": {
            "label": before_label,
            "wall_seconds": round(before_med, 6),
            "cpu_seconds": round(before_cpu, 6),
            "wall_samples": [round(w, 6) for w in before_walls],
        },
        "after": {
            "label": after_label,
            "wall_seconds": round(after_med, 6),
            "cpu_seconds": round(after_cpu, 6),
            "wall_samples": [round(w, 6) for w in after_walls],
        },
        "improvement_pct": round(improvement, 2),
        "improvement_cpu_pct": round(improvement_cpu, 2),
    }


# -- the cluster throughput row ----------------------------------------------


def run_cluster_row(log: LogFn = _silent) -> dict[str, Any]:
    """One sharded-cluster loadtest; end-to-end echo throughput."""
    from ..cluster.config import ClusterConfig
    from ..cluster.loadtest import run_cluster_loadtest

    config = cluster_row_config()
    log("  cluster/loadtest ...")
    start = time.perf_counter()
    report = asyncio.run(run_cluster_loadtest(ClusterConfig(**config)))
    wall = time.perf_counter() - start
    log(f"  cluster/loadtest: {report.load.throughput:.1f} echoes/s")
    return {
        "id": "cluster/loadtest",
        "config": config,
        "deterministic": False,
        "wall_seconds": round(wall, 6),
        "throughput": round(report.load.throughput, 3),
        "echoes": report.load.echoes,
        "survived": report.survived,
    }


# -- top level ---------------------------------------------------------------


def run_bench(
    repeats: int = DEFAULT_REPEATS,
    smoke: bool = False,
    manifest_path: Path = DEFAULT_BENCH_MANIFEST,
    log: LogFn = _silent,
) -> dict[str, Any]:
    """Run the whole pinned matrix into a BENCH report dict.

    ``smoke=True`` runs the reduced CI matrix: deterministic cells
    only, plus the single acceptance pair (interleaved pair timing is
    the one wall measurement robust enough for a CI gate), and no
    cluster row.
    """
    cells = matrix_cells(smoke=smoke)
    log(f"matrix: {len(cells)} cells" + (" (smoke)" if smoke else ""))
    report: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "bench_id": BENCH_ID,
        "matrix_hash": matrix_hash(smoke=smoke),
        "smoke": smoke,
        "repeats": repeats,
        "cells": run_matrix(cells, manifest_path=manifest_path, log=log),
        "pairs": [],
        "cluster": None,
    }
    pairs = pair_cells(smoke=smoke)
    log(f"pairs: {len(pairs)} before/after")
    report["pairs"] = [run_pair(p, repeats=repeats, log=log) for p in pairs]
    if not smoke:
        report["cluster"] = run_cluster_row(log=log)
    return report
