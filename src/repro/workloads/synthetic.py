"""Synthetic workloads: parametric task mixes for tests and ablations.

These are not from the paper's evaluation; they isolate individual
scheduler behaviours so tests and ablation benches can probe one effect
at a time:

* :func:`cpu_hogs` — pure compute tasks; exercises quantum expiry,
  counter recalculation, and fairness;
* :func:`pingpong_pairs` — blocking message ping-pong; exercises the
  wakeup path and run-queue churn;
* :func:`fanout_broadcast` — one producer waking many consumers;
  exercises run-queue length growth (the O(n) scan killer);
* :func:`yield_storm` — spin-yield loops; exercises the SCHED_YIELD
  path and the recalculation pathology in isolation;
* :func:`rt_mix` — real-time FIFO/RR tasks over a SCHED_OTHER
  background; exercises the RT selection rules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..kernel.machine import Machine
from ..kernel.mm import MMStruct
from ..kernel.params import seconds_to_cycles
from ..kernel.sync import Channel
from ..kernel.task import SchedPolicy, Task

__all__ = [
    "cpu_hogs",
    "pingpong_pairs",
    "fanout_broadcast",
    "yield_storm",
    "rt_mix",
    "SyntheticCounters",
]


@dataclass
class SyntheticCounters:
    """Shared counters the synthetic bodies update for assertions."""

    iterations: int = 0
    messages: int = 0
    yields: int = 0
    per_task_cycles: dict[str, int] = field(default_factory=dict)


def cpu_hogs(
    machine: Machine,
    count: int = 4,
    seconds_each: float = 0.5,
    chunk_us: float = 500.0,
    priority: int = 20,
    shared_mm: bool = True,
    seed: int = 1,
) -> SyntheticCounters:
    """Spawn ``count`` pure-compute tasks, each burning ``seconds_each``."""
    counters = SyntheticCounters()
    rng = random.Random(seed)
    mm = MMStruct("hogs") if shared_mm else None
    chunk = max(1, seconds_to_cycles(chunk_us / 1e6))
    total = seconds_to_cycles(seconds_each)

    def hog(env: Any, label: str) -> Generator:
        burned = 0
        while burned < total:
            step = min(chunk, total - burned)
            yield env.run(cycles=step)
            burned += step
            counters.iterations += 1
        counters.per_task_cycles[label] = burned

    for i in range(count):
        label = f"hog{i}"
        task_mm = mm if shared_mm else MMStruct(label)
        machine.spawn(
            lambda env, lb=label: hog(env, lb),
            name=label,
            mm=task_mm,
            priority=priority,
        )
    return counters


def pingpong_pairs(
    machine: Machine,
    pairs: int = 8,
    rounds: int = 50,
    work_us: float = 20.0,
    buffer_msgs: int = 1,
) -> SyntheticCounters:
    """Spawn ``pairs`` blocking ping-pong couples."""
    counters = SyntheticCounters()
    mm = MMStruct("pingpong")
    work = max(1, seconds_to_cycles(work_us / 1e6))

    def ping(env: Any, out: Channel, back: Channel) -> Generator:
        for i in range(rounds):
            yield env.run(cycles=work)
            yield env.put(out, i)
            echo = yield env.get(back)
            assert echo == i
            counters.messages += 1

    def pong(env: Any, inbox: Channel, back: Channel) -> Generator:
        for _ in range(rounds):
            value = yield env.get(inbox)
            yield env.run(cycles=work)
            yield env.put(back, value)

    for p in range(pairs):
        out = Channel(buffer_msgs, name=f"pp{p}.out")
        back = Channel(buffer_msgs, name=f"pp{p}.back")
        machine.spawn(
            lambda env, o=out, b=back: ping(env, o, b), name=f"ping{p}", mm=mm
        )
        machine.spawn(
            lambda env, o=out, b=back: pong(env, o, b), name=f"pong{p}", mm=mm
        )
    return counters


def fanout_broadcast(
    machine: Machine,
    consumers: int = 50,
    rounds: int = 20,
    producer_work_us: float = 10.0,
    consumer_work_us: float = 30.0,
    buffer_msgs: int = 4,
) -> SyntheticCounters:
    """One producer broadcasting to ``consumers`` channels per round.

    Every broadcast makes all consumers runnable at once — the run-queue
    shape that makes the stock scheduler's O(n) scan expensive.
    """
    counters = SyntheticCounters()
    mm = MMStruct("fanout")
    p_work = max(1, seconds_to_cycles(producer_work_us / 1e6))
    c_work = max(1, seconds_to_cycles(consumer_work_us / 1e6))
    channels = [Channel(buffer_msgs, name=f"fan{i}") for i in range(consumers)]

    def producer(env: Any) -> Generator:
        for r in range(rounds):
            yield env.run(cycles=p_work)
            for chan in channels:
                yield env.put(chan, r)

    def consumer(env: Any, chan: Channel) -> Generator:
        for _ in range(rounds):
            value = yield env.get(chan)
            assert value is not None
            yield env.run(cycles=c_work)
            counters.messages += 1

    machine.spawn(producer, name="producer", mm=mm)
    for i, chan in enumerate(channels):
        machine.spawn(
            lambda env, c=chan: consumer(env, c), name=f"consumer{i}", mm=mm
        )
    return counters


def yield_storm(
    machine: Machine,
    tasks: int = 1,
    yields_each: int = 100,
    work_us: float = 5.0,
) -> SyntheticCounters:
    """Tasks that compute briefly and ``sched_yield()`` in a loop.

    With ``tasks=1`` this is the paper's recalculation pathology in its
    purest form: every yield makes the lone task's goodness read as zero,
    so the stock scheduler recalculates every counter in the system while
    ELSC just reruns the task.
    """
    counters = SyntheticCounters()
    mm = MMStruct("storm")
    work = max(1, seconds_to_cycles(work_us / 1e6))

    def storm(env: Any) -> Generator:
        for _ in range(yields_each):
            yield env.run(cycles=work)
            yield env.sched_yield()
            counters.yields += 1

    for i in range(tasks):
        machine.spawn(storm, name=f"storm{i}", mm=mm)
    return counters


def rt_mix(
    machine: Machine,
    rt_tasks: int = 2,
    other_tasks: int = 4,
    rounds: int = 20,
    rt_policy: SchedPolicy = SchedPolicy.SCHED_RR,
    work_us: float = 100.0,
) -> SyntheticCounters:
    """Real-time tasks over a SCHED_OTHER background.

    The RT tasks alternate compute and short sleeps so the background
    actually gets CPU; selection order (RT always first, by rt_priority)
    is what tests assert.
    """
    counters = SyntheticCounters()
    mm = MMStruct("rtmix")
    work = max(1, seconds_to_cycles(work_us / 1e6))

    def rt_body(env: Any, label: str) -> Generator:
        for _ in range(rounds):
            yield env.run(cycles=work)
            counters.iterations += 1
            yield env.sleep(0.002)
        counters.per_task_cycles[label] = rounds

    def other_body(env: Any, label: str) -> Generator:
        for _ in range(rounds):
            yield env.run(cycles=work)
        counters.per_task_cycles[label] = rounds

    for i in range(rt_tasks):
        machine.spawn(
            lambda env, lb=f"rt{i}": rt_body(env, lb),
            name=f"rt{i}",
            mm=mm,
            policy=rt_policy,
            rt_priority=50 + i,
        )
    for i in range(other_tasks):
        machine.spawn(
            lambda env, lb=f"bg{i}": other_body(env, lb), name=f"bg{i}", mm=mm
        )
    return counters
