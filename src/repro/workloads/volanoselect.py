"""A select()-based chat server: the counterfactual of section 4.

The paper motivates the thread storm with Java's missing multiplexed
I/O: "Multiplexing I/O system calls (such as select) can help in some
situations, but they are not always available.  The popular Java
programming language is a prime example."

This workload is the counterfactual: the *same* chat protocol and the
*same* clients (still two blocking-I/O threads per user — they model
the remote Java applets), but the server side is rewritten the way a C
server would be: **one thread per room** that ``select()``s across its
members' sockets and broadcasts inline.  Thread count per room drops
from 80 to 41, and — more importantly — the server no longer wakes 20
writer threads per message, so the run queue stays short.

Comparing this against :mod:`~repro.workloads.volanomark` under the
*stock* scheduler quantifies how much of the paper's problem is the
threading model rather than the scheduler; comparing reg vs ELSC *here*
shows the schedulers converging once the thread storm is gone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..kernel.cost_model import CostModel
from ..kernel.machine import Machine
from ..kernel.mm import MMStruct
from ..kernel.params import cycles_to_seconds, seconds_to_cycles
from ..kernel.simulator import MachineSpec, SimResult, Simulator
from ..net.socket import SocketPair
from .volanomark import VolanoConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.base import Scheduler

__all__ = ["SelectChat", "SelectChatResult", "run_select_chat"]


@dataclass
class SelectChatResult:
    """Outcome of one select-server chat run."""

    config: VolanoConfig
    spec: MachineSpec
    scheduler_name: str
    throughput: float
    messages_delivered: int
    elapsed_seconds: float
    scheduler_fraction: float
    #: Threads this architecture created (vs config.threads for the
    #: thread-per-connection VolanoMark).
    threads: int
    sim: SimResult

    def __repr__(self) -> str:
        return (
            f"<SelectChatResult {self.scheduler_name}/{self.spec.name} "
            f"rooms={self.config.rooms} {self.throughput:.0f} msg/s>"
        )


class SelectChat:
    """Builds the select-server topology: clients as in VolanoMark, one
    server thread per room."""

    def __init__(self, config: VolanoConfig) -> None:
        self.config = config
        self.delivered = 0
        self.last_delivery_cycles = 0
        self.threads = 0
        self._client_mm: Optional[MMStruct] = None
        self._server_mm: Optional[MMStruct] = None

    def _thread_rng(self, name: str) -> random.Random:
        return random.Random(f"{self.config.seed}/select/{name}")

    @staticmethod
    def _work(rng: random.Random, us: float, jitter: float) -> int:
        factor = 1.0 if jitter <= 0 else rng.uniform(1 - jitter, 1 + jitter)
        return max(1, seconds_to_cycles(us * factor / 1e6))

    # -- client side: unchanged from VolanoMark (remote Java applets) --------

    def _client_writer(
        self, env: Any, sock: SocketPair, user: int, slot: int
    ) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"cw{slot}")
        if cfg.startup_stagger_us > 0:
            yield env.sleep((slot + 1) * cfg.startup_stagger_us / 1e6)
        for seq in range(cfg.messages_per_user):
            yield env.run(
                cycles=self._work(rng, cfg.client_send_work_us, cfg.jitter)
            )
            yield env.put(sock.client.tx, (user, seq))

    def _client_reader(
        self, env: Any, sock: SocketPair, expected: int, slot: int
    ) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"cr{slot}")
        for _ in range(expected):
            msg = yield env.get(sock.client.rx)
            assert msg is not None
            yield env.run(
                cycles=self._work(rng, cfg.client_recv_work_us, cfg.jitter)
            )
            self.delivered += 1
            self.last_delivery_cycles = env.now

    # -- server side: one select loop per room --------------------------------

    def _room_server(
        self, env: Any, socks: list[SocketPair], room_index: int
    ) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"room{room_index}")
        inbound = [s.server.rx for s in socks]
        total = cfg.users_per_room * cfg.messages_per_user
        for _ in range(total):
            _, msg = yield env.select(inbound)
            yield env.run(
                cycles=self._work(rng, cfg.server_route_work_us, cfg.jitter)
            )
            # Broadcast inline — no per-connection writer threads, no
            # roster monitor contention.
            for sock in socks:
                yield env.run(
                    cycles=self._work(
                        rng, cfg.server_send_work_us, cfg.jitter
                    )
                )
                yield env.put(sock.server.tx, msg)

    # -- topology ----------------------------------------------------------------

    def populate(self, machine: Machine) -> dict[str, Any]:
        cfg = self.config
        self._client_mm = MMStruct("applet-clients")
        self._server_mm = MMStruct("select-server")
        expected = cfg.users_per_room * cfg.messages_per_user
        for r in range(cfg.rooms):
            socks = [
                SocketPair(buffer_msgs=cfg.socket_buffer, name=f"sr{r}u{u}")
                for u in range(cfg.users_per_room)
            ]
            for u, sock in enumerate(socks):
                slot = r * cfg.users_per_room + u
                machine.spawn(
                    lambda env, s=sock, uu=u, sl=slot: self._client_writer(
                        env, s, uu, sl
                    ),
                    name=f"sr{r}u{u}.cw",
                    mm=self._client_mm,
                )
                machine.spawn(
                    lambda env, s=sock, sl=slot: self._client_reader(
                        env, s, expected, sl
                    ),
                    name=f"sr{r}u{u}.cr",
                    mm=self._client_mm,
                )
                self.threads += 2
            machine.spawn(
                lambda env, ss=socks, rr=r: self._room_server(env, ss, rr),
                name=f"room{r}.server",
                mm=self._server_mm,
            )
            self.threads += 1
        return {
            "delivered": lambda: self.delivered,
            "last_delivery_cycles": lambda: self.last_delivery_cycles,
        }


def run_select_chat(
    scheduler_factory: Callable[[], "Scheduler"],
    spec: MachineSpec,
    config: Optional[VolanoConfig] = None,
    cost: Optional[CostModel] = None,
    prof: Optional[Any] = None,
    metrics: Optional[Any] = None,
) -> SelectChatResult:
    """One run of the select-server chat; same metric as VolanoMark."""
    cfg = config if config is not None else VolanoConfig()
    bench = SelectChat(cfg)
    plan = None
    if cfg.fault_plan:
        from ..faults import FaultPlan

        plan = FaultPlan.from_config(cfg.fault_plan)
    sim = Simulator(
        scheduler_factory, spec, cost=cost, prof=prof, fault_plan=plan,
        metrics=metrics,
    )
    result = sim.run(bench.populate)
    delivered = result.payload["delivered"]
    if plan is None:
        if result.summary.deadlocked:
            raise RuntimeError(f"select chat deadlocked: {result.summary!r}")
        if delivered != cfg.deliveries_expected:
            raise RuntimeError(
                f"message loss: {delivered}/{cfg.deliveries_expected}"
            )
    elapsed = cycles_to_seconds(result.payload["last_delivery_cycles"])
    if elapsed <= 0:
        elapsed = result.seconds
    return SelectChatResult(
        config=cfg,
        spec=spec,
        scheduler_name=result.scheduler_name,
        throughput=delivered / elapsed if elapsed > 0 else 0.0,
        messages_delivered=delivered,
        elapsed_seconds=elapsed,
        scheduler_fraction=result.scheduler_fraction,
        threads=bench.threads,
        sim=result,
    )
