"""The VolanoMark chat-server model (paper section 4 and 6).

VolanoMark benchmarks VolanoChat, a Java chat server.  In loopback mode
both the clients and the server run on one machine.  The thread topology
is exactly the paper's:

* one socket connection per simulated user;
* **four threads per connection** — Java has no non-blocking I/O, so
  each side dedicates a reader and a writer thread to every socket:

  - *client writer*: composes and sends this user's messages,
  - *client reader*: receives everything said in the room,
  - *server reader*: receives this user's messages and broadcasts each
    to every room member's outbox (serialised by a per-room roster lock
    of the spin-then-yield kind 1999-era JVMs used),
  - *server writer*: drains this connection's outbox onto the socket;

* each room has 20 users, so each room contributes **80 threads**;
* every user sends ``messages_per_user`` messages; each is delivered to
  all 20 room members, so a room moves ``users² × messages`` deliveries.

The benchmark metric is **message throughput**: deliveries to clients
per virtual second, the number Figure 3 plots.

Fidelity notes
--------------
* Client threads share one address space (the client JVM), server
  threads another (the server JVM) — loopback mode runs two JVMs.
* Socket buffers are small (a handful of messages), so writers block and
  ping-pong with readers through the scheduler at high frequency.
* The roster lock's spin-then-``sched_yield()`` behaviour is what makes
  the stock scheduler enter its whole-system counter recalculation when
  a yielding task is momentarily the only runnable one (Figure 2).
* ``messages_per_user`` defaults to a reduced value so test suites run
  quickly; throughput is a rate, so the Figure 3/4 *shapes* are
  preserved.  ``VolanoConfig.paper()`` restores the paper's parameters
  (20 users × 100 messages, 5–20 rooms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..kernel.cost_model import CostModel
from ..kernel.machine import Machine
from ..kernel.mm import MMStruct
from ..kernel.params import seconds_to_cycles
from ..kernel.simulator import MachineSpec, SimResult, Simulator
from ..kernel.sync import Channel, SpinYieldLock
from ..net.socket import SocketPair

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.base import Scheduler

__all__ = [
    "VolanoConfig",
    "VolanoResult",
    "VolanoMark",
    "run_volanomark",
    "run_volanomark_rules",
]


@dataclass(frozen=True)
class VolanoConfig:
    """Parameters of one VolanoMark run."""

    rooms: int = 5
    users_per_room: int = 20
    #: Messages each user sends.  Paper: 100.  Default is reduced for
    #: wall-clock-friendly runs; throughput is a rate so series shapes
    #: survive the reduction.
    messages_per_user: int = 10
    #: Loopback socket buffer, in messages.
    socket_buffer: int = 4
    #: Per-connection server outbox capacity, in messages.  Sized so a
    #: broadcasting server reader rarely blocks while holding the room
    #: monitor (see ``_server_reader``).
    outbox_capacity: int = 32
    seed: int = 42
    #: ±fractional jitter applied to every work quantum.
    jitter: float = 0.2

    # Per-operation CPU work, microseconds (JVM + protocol + syscall path).
    client_send_work_us: float = 30.0
    client_recv_work_us: float = 15.0
    server_route_work_us: float = 20.0
    roster_copy_work_us: float = 2.0
    server_enqueue_work_us: float = 2.0
    server_send_work_us: float = 25.0
    #: Spin time of the roster lock before it yields, microseconds.
    roster_spin_us: float = 3.0
    #: ``sched_yield()`` rounds a JVM reader polls an empty stream before
    #: blocking — the 1999-era "spin-poll I/O" behaviour that makes
    #: "a yielding task with nothing else runnable" a frequent scheduler
    #: entry (the paper's Figure 2 recalculation trigger).
    read_poll_yields: int = 1
    #: CPU cost of one empty poll probe, microseconds.
    poll_work_us: float = 1.0
    #: Per-user start stagger, microseconds: VolanoMark establishes its
    #: connections sequentially, so rooms ramp up one user at a time and
    #: the run has genuine light-load phases (where the stock scheduler's
    #: yield-triggered recalculation fires) before saturation.
    startup_stagger_us: float = 250.0
    #: JVM housekeeping threads per JVM (GC helper / timer / finalizer):
    #: each wakes periodically, does a little work, ``sched_yield()``s a
    #: couple of times (safepoint polling) and sleeps again.  When the
    #: machine is otherwise quiet those yields are the "yield with nothing
    #: else to schedule" events of the paper's section 5.2 — the stock
    #: scheduler recalculates every counter in the system, ELSC reruns.
    housekeeping_threads: int = 1
    housekeeping_period_s: float = 0.01
    housekeeping_work_us: float = 5.0
    housekeeping_yields: int = 2
    #: Canonical FaultPlan JSON (see repro.faults), "" = no chaos.  A
    #: plan relaxes the completion checks: a faulted run is *expected* to
    #: lose messages, and the plan's horizon bounds the simulation.
    fault_plan: str = ""

    @staticmethod
    def paper() -> "VolanoConfig":
        """The paper's exact run parameters (section 6)."""
        return VolanoConfig(users_per_room=20, messages_per_user=100)

    def with_rooms(self, rooms: int) -> "VolanoConfig":
        return replace(self, rooms=rooms)

    @property
    def threads(self) -> int:
        """Total chat threads the run creates (80 per room by default)."""
        return self.rooms * self.users_per_room * 4

    @property
    def deliveries_expected(self) -> int:
        """Messages that will reach clients over the whole run."""
        return self.rooms * self.users_per_room**2 * self.messages_per_user


@dataclass
class VolanoResult:
    """Outcome of one VolanoMark run."""

    config: VolanoConfig
    spec: MachineSpec
    scheduler_name: str
    #: Deliveries per virtual second — the paper's headline metric.
    throughput: float
    messages_delivered: int
    elapsed_seconds: float
    scheduler_fraction: float
    sim: SimResult

    def __repr__(self) -> str:
        return (
            f"<VolanoResult {self.scheduler_name}/{self.spec.name} "
            f"rooms={self.config.rooms} {self.throughput:.0f} msg/s>"
        )


class _Room:
    """Server-side state of one chat room."""

    __slots__ = ("index", "lock", "outboxes", "expected")

    def __init__(self, index: int, config: VolanoConfig) -> None:
        self.index = index
        spin = max(1, seconds_to_cycles(config.roster_spin_us / 1e6))
        self.lock = SpinYieldLock(name=f"room{index}.roster", spin_cycles=spin)
        self.outboxes: list[Channel] = []
        #: Messages each member will receive in total.
        self.expected = config.users_per_room * config.messages_per_user


class VolanoMark:
    """Builds the chat topology on a machine and tracks deliveries."""

    def __init__(self, config: VolanoConfig) -> None:
        self.config = config
        self.delivered = 0
        #: Virtual time (cycles) of the most recent delivery — the
        #: throughput denominator (trailing housekeeping wakeups should
        #: not dilute the rate).
        self.last_delivery_cycles = 0
        self._rng = random.Random(config.seed)
        self._client_mm: Optional[MMStruct] = None
        self._server_mm: Optional[MMStruct] = None

    # -- work quanta with deterministic jitter ------------------------------------

    def _thread_rng(self, name: str) -> random.Random:
        """A per-thread RNG so jitter draws do not depend on schedule
        order — both schedulers then face bit-identical workloads."""
        return random.Random(f"{self.config.seed}/{name}")

    @staticmethod
    def _work_cycles(rng: random.Random, us: float, jitter: float) -> int:
        factor = 1.0 if jitter <= 0 else rng.uniform(1 - jitter, 1 + jitter)
        return max(1, seconds_to_cycles(us * factor / 1e6))

    # -- thread bodies ---------------------------------------------------------------

    def _poll_read(
        self, env: Any, channel: Channel, rng: random.Random
    ) -> Generator:
        """JVM-style read: poll-yield an empty stream, then block.

        Yields the polling actions; the caller still issues the real
        (blocking) ``get`` afterwards.
        """
        cfg = self.config
        for _ in range(cfg.read_poll_yields):
            if len(channel) or channel.closed:
                return
            yield env.run(
                cycles=self._work_cycles(rng, cfg.poll_work_us, cfg.jitter)
            )
            yield env.sched_yield()

    def _client_writer(
        self, env: Any, sock: SocketPair, user: int, slot: int
    ) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"cw{slot}")
        if cfg.startup_stagger_us > 0:
            # Sequential connection establishment: user `slot` starts
            # sending only after the earlier connections are up.
            yield env.sleep((slot + 1) * cfg.startup_stagger_us / 1e6)
        for seq in range(cfg.messages_per_user):
            yield env.run(
                cycles=self._work_cycles(rng, cfg.client_send_work_us, cfg.jitter)
            )
            yield env.put(sock.client.tx, (user, seq))

    def _client_reader(
        self, env: Any, sock: SocketPair, room: _Room, slot: int
    ) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"cr{slot}")
        for _ in range(room.expected):
            yield from self._poll_read(env, sock.client.rx, rng)
            msg = yield env.get(sock.client.rx)
            assert msg is not None
            yield env.run(
                cycles=self._work_cycles(rng, cfg.client_recv_work_us, cfg.jitter)
            )
            self.delivered += 1
            self.last_delivery_cycles = env.now

    def _server_reader(
        self, env: Any, sock: SocketPair, room: _Room, slot: int
    ) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"sr{slot}")
        for _ in range(cfg.messages_per_user):
            yield from self._poll_read(env, sock.server.rx, rng)
            msg = yield env.get(sock.server.rx)
            yield env.run(
                cycles=self._work_cycles(rng, cfg.server_route_work_us, cfg.jitter)
            )
            # Broadcast while synchronized on the room roster, as
            # VolanoChat does; a contended monitor in a 1999-era JVM
            # spins briefly, sched_yield()s, then inflates to a blocking
            # wait.  Outboxes are sized so the holder rarely blocks
            # inside the monitor, bounding the hold time.
            yield from room.lock.acquire(env)
            yield env.run(
                cycles=self._work_cycles(rng, cfg.roster_copy_work_us, cfg.jitter)
            )
            for outbox in room.outboxes:
                yield env.run(
                    cycles=self._work_cycles(
                        rng, cfg.server_enqueue_work_us, cfg.jitter
                    )
                )
                yield env.put(outbox, msg)
            yield from room.lock.release(env)

    def _server_writer(
        self, env: Any, sock: SocketPair, outbox: Channel, room: _Room, slot: int
    ) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"sw{slot}")
        for _ in range(room.expected):
            yield from self._poll_read(env, outbox, rng)
            msg = yield env.get(outbox)
            yield env.run(
                cycles=self._work_cycles(rng, cfg.server_send_work_us, cfg.jitter)
            )
            yield env.put(sock.server.tx, msg)

    def _housekeeping(self, env: Any, jvm: str, index: int) -> Generator:
        """A JVM service thread: wake, poke around, yield, sleep.

        Exits once the benchmark's deliveries are complete so the
        simulation drains naturally.
        """
        cfg = self.config
        rng = self._thread_rng(f"gc-{jvm}{index}")
        expected = cfg.deliveries_expected
        jitter = 1.0 + 0.1 * index  # desynchronise multiple threads
        while self.delivered < expected:
            yield env.sleep(cfg.housekeeping_period_s * jitter)
            yield env.run(
                cycles=self._work_cycles(rng, cfg.housekeeping_work_us, cfg.jitter)
            )
            for _ in range(cfg.housekeeping_yields):
                yield env.sched_yield()

    # -- topology --------------------------------------------------------------------

    def populate(self, machine: Machine) -> dict[str, Any]:
        """Spawn every room's threads on ``machine``."""
        cfg = self.config
        self._client_mm = MMStruct("client-jvm")
        self._server_mm = MMStruct("server-jvm")
        for r in range(cfg.rooms):
            room = _Room(r, cfg)
            socks: list[SocketPair] = []
            for u in range(cfg.users_per_room):
                sock = SocketPair(
                    buffer_msgs=cfg.socket_buffer, name=f"r{r}u{u}"
                )
                socks.append(sock)
                outbox = Channel(
                    capacity=cfg.outbox_capacity, name=f"r{r}u{u}.outbox"
                )
                room.outboxes.append(outbox)
            for u, sock in enumerate(socks):
                outbox = room.outboxes[u]
                slot = r * cfg.users_per_room + u
                machine.spawn(
                    lambda env, s=sock, uu=u, sl=slot: self._client_writer(
                        env, s, uu, sl
                    ),
                    name=f"r{r}u{u}.cw",
                    mm=self._client_mm,
                )
                machine.spawn(
                    lambda env, s=sock, rm=room, sl=slot: self._client_reader(
                        env, s, rm, sl
                    ),
                    name=f"r{r}u{u}.cr",
                    mm=self._client_mm,
                )
                machine.spawn(
                    lambda env, s=sock, rm=room, sl=slot: self._server_reader(
                        env, s, rm, sl
                    ),
                    name=f"r{r}u{u}.sr",
                    mm=self._server_mm,
                )
                machine.spawn(
                    lambda env, s=sock, ob=outbox, rm=room, sl=slot: (
                        self._server_writer(env, s, ob, rm, sl)
                    ),
                    name=f"r{r}u{u}.sw",
                    mm=self._server_mm,
                )
        for index in range(cfg.housekeeping_threads):
            machine.spawn(
                lambda env, i=index: self._housekeeping(env, "client", i),
                name=f"client-jvm.gc{index}",
                mm=self._client_mm,
            )
            machine.spawn(
                lambda env, i=index: self._housekeeping(env, "server", i),
                name=f"server-jvm.gc{index}",
                mm=self._server_mm,
            )
        return {
            "delivered": lambda: self.delivered,
            "last_delivery_cycles": lambda: self.last_delivery_cycles,
        }


def run_volanomark(
    scheduler_factory: Callable[[], "Scheduler"],
    spec: MachineSpec,
    config: Optional[VolanoConfig] = None,
    cost: Optional[CostModel] = None,
    prof: Optional[Any] = None,
    metrics: Optional[Any] = None,
) -> VolanoResult:
    """One VolanoMark run on a fresh machine; the workhorse of Figures 2–6."""
    cfg = config if config is not None else VolanoConfig()
    bench = VolanoMark(cfg)
    plan = None
    if cfg.fault_plan:
        from ..faults import FaultPlan

        plan = FaultPlan.from_config(cfg.fault_plan)
    sim = Simulator(
        scheduler_factory, spec, cost=cost, prof=prof, fault_plan=plan,
        metrics=metrics,
    )
    result = sim.run(bench.populate)
    delivered = result.payload["delivered"]
    if plan is None:
        # Strict completion checks only make sense on fault-free runs: an
        # injected crash legitimately strands deliveries.
        if result.summary.deadlocked:
            raise RuntimeError(
                f"VolanoMark deadlocked: {result.summary!r} "
                f"(delivered {bench.delivered}/{cfg.deliveries_expected})"
            )
        if delivered != cfg.deliveries_expected:
            raise RuntimeError(
                f"message loss: delivered {delivered}, "
                f"expected {cfg.deliveries_expected}"
            )
    from ..kernel.params import cycles_to_seconds

    # Rate to the *last delivery*: the drain of housekeeping threads after
    # the final message should not dilute the throughput figure.
    elapsed = cycles_to_seconds(result.payload["last_delivery_cycles"])
    if elapsed <= 0:
        elapsed = result.seconds
    throughput = delivered / elapsed if elapsed > 0 else 0.0
    return VolanoResult(
        config=cfg,
        spec=spec,
        scheduler_name=result.scheduler_name,
        throughput=throughput,
        messages_delivered=delivered,
        elapsed_seconds=elapsed,
        scheduler_fraction=result.scheduler_fraction,
        sim=result,
    )


def run_volanomark_rules(
    scheduler_factory: Callable[[], "Scheduler"],
    spec: MachineSpec,
    config: Optional[VolanoConfig] = None,
    cost: Optional[CostModel] = None,
    runs: int = 3,
    discard_first: bool = True,
) -> list[VolanoResult]:
    """The VolanoMark run rules, scaled down.

    The paper ran each configuration 11 times and discarded the first
    (startup variance).  Each repetition here perturbs the workload seed,
    and the first run is discarded when requested.  Returns the kept
    results; average their ``throughput`` for a Figure 3 data point.
    """
    cfg = config if config is not None else VolanoConfig()
    kept: list[VolanoResult] = []
    for i in range(runs):
        run_cfg = replace(cfg, seed=cfg.seed + i)
        result = run_volanomark(scheduler_factory, spec, run_cfg, cost)
        if discard_first and i == 0 and runs > 1:
            continue
        kept.append(result)
    return kept
