"""An Apache-style web server — the paper's future-work question (§8).

    "One such example is a web server running Apache.  Would we see the
    same performance gains we saw while running VolanoMark … Would the
    ELSC scheduler be more effective in increasing throughput or
    decreasing the latency of an Apache web server?"

The model is Apache 1.3's pre-forked process pool: ``workers`` identical
processes (each its own address space — processes, not threads) block in
``accept()`` on a shared listen queue; each accepted request costs some
CPU (parsing + response generation), possibly a disk wait (a cache
miss), and a write back to the client.  A closed-loop client population
drives the listen queue with think times.

The interesting contrast with VolanoMark: the run queue stays *short*
(only woken workers are runnable, and accept wake-one keeps herds down),
so the paper's implied answer — the scheduler is *not* the bottleneck
here — is measurable: both schedulers should tie on throughput, and the
bench records latency too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..kernel.cost_model import CostModel
from ..kernel.machine import Machine
from ..kernel.mm import MMStruct
from ..kernel.params import cycles_to_seconds, seconds_to_cycles
from ..kernel.simulator import MachineSpec, SimResult, Simulator
from ..kernel.sync import Channel

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.base import Scheduler

__all__ = ["WebServerConfig", "WebServerResult", "WebServer", "run_webserver"]


@dataclass(frozen=True)
class WebServerConfig:
    """Parameters of one web-server run."""

    workers: int = 16
    clients: int = 64
    requests_per_client: int = 20
    seed: int = 11
    #: CPU work to parse a request and build the response, microseconds.
    service_work_us: float = 150.0
    #: Probability a request misses the page cache and waits on disk.
    cache_miss_rate: float = 0.1
    disk_wait_seconds: float = 0.008
    #: Client think time between requests (exponential mean), seconds.
    think_seconds: float = 0.005
    #: Listen queue depth (SYN backlog).
    backlog: int = 128
    #: Canonical FaultPlan JSON (see repro.faults), "" = no chaos.
    fault_plan: str = ""

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


@dataclass
class WebServerResult:
    config: WebServerConfig
    spec: MachineSpec
    scheduler_name: str
    requests_done: int
    elapsed_seconds: float
    #: Requests served per virtual second.
    throughput: float
    #: Mean time from enqueue on the listen queue to response completion.
    mean_latency_seconds: float
    p99_latency_seconds: float
    scheduler_fraction: float
    sim: SimResult

    def __repr__(self) -> str:
        return (
            f"<WebServerResult {self.scheduler_name}/{self.spec.name} "
            f"{self.throughput:.0f} req/s p99={self.p99_latency_seconds * 1000:.1f}ms>"
        )


class WebServer:
    """Builds the worker pool + closed-loop clients on a machine."""

    def __init__(self, config: WebServerConfig) -> None:
        self.config = config
        self.requests_done = 0
        self.latencies_cycles: list[int] = []
        self.last_response_cycles = 0

    def _thread_rng(self, name: str) -> random.Random:
        """Per-thread RNG: draws stay identical whatever the schedule
        order, so different schedulers face bit-identical workloads.

        Service-time and cache-miss draws are made by *clients* per
        request (not by whichever worker picks it up) for the same
        reason."""
        return random.Random(f"{self.config.seed}/{name}")

    def _worker(self, env: Any, listen: Channel, mm_name: str) -> Generator:
        cfg = self.config
        while True:
            request = yield env.get(listen)
            if request is None or not isinstance(request, tuple):
                return  # poisoned: shut down
            enqueue_time, reply, service_cycles, misses = request
            yield env.run(cycles=service_cycles)
            if misses:
                yield env.sleep(cfg.disk_wait_seconds)
            yield env.put(reply, env.now)
            self.requests_done += 1
            self.latencies_cycles.append(env.now - enqueue_time)
            self.last_response_cycles = env.now

    def _client(self, env: Any, listen: Channel, index: int) -> Generator:
        cfg = self.config
        rng = self._thread_rng(f"client{index}")
        reply = Channel(capacity=1, name=f"client{index}.reply")
        # Stagger arrival like real connection establishment.
        yield env.sleep(0.0001 * (index + 1))
        for _ in range(cfg.requests_per_client):
            service = max(
                1,
                seconds_to_cycles(
                    cfg.service_work_us * rng.uniform(0.8, 1.2) / 1e6
                ),
            )
            misses = rng.random() < cfg.cache_miss_rate
            yield env.put(listen, (env.now, reply, service, misses))
            yield env.get(reply)
            think = rng.expovariate(1.0 / cfg.think_seconds)
            yield env.sleep(max(1e-5, think))

    def _reaper(self, env: Any, listen: Channel) -> Generator:
        """Poisons the worker pool once all requests are served."""
        cfg = self.config
        while self.requests_done < cfg.total_requests:
            yield env.sleep(0.005)
        for _ in range(cfg.workers):
            yield env.put(listen, None)

    def populate(self, machine: Machine) -> dict[str, Any]:
        cfg = self.config
        listen = Channel(capacity=cfg.backlog, name="listen")
        client_mm = MMStruct("client-driver")
        for w in range(cfg.workers):
            # Pre-forked processes: each worker is its own address space.
            machine.spawn(
                lambda env, n=f"httpd{w}": self._worker(env, listen, n),
                name=f"httpd{w}",
                mm=MMStruct(f"httpd{w}"),
            )
        for c in range(cfg.clients):
            machine.spawn(
                lambda env, i=c: self._client(env, listen, i),
                name=f"client{c}",
                mm=client_mm,
            )
        machine.spawn(
            lambda env: self._reaper(env, listen), name="reaper", mm=client_mm
        )
        return {"requests": lambda: self.requests_done}


def run_webserver(
    scheduler_factory: Callable[[], "Scheduler"],
    spec: MachineSpec,
    config: Optional[WebServerConfig] = None,
    cost: Optional[CostModel] = None,
    prof: Optional[Any] = None,
    metrics: Optional[Any] = None,
) -> WebServerResult:
    """One web-server run: throughput and latency under a worker pool."""
    cfg = config if config is not None else WebServerConfig()
    bench = WebServer(cfg)
    plan = None
    if cfg.fault_plan:
        from ..faults import FaultPlan

        plan = FaultPlan.from_config(cfg.fault_plan)
    sim = Simulator(
        scheduler_factory, spec, cost=cost, prof=prof, fault_plan=plan,
        metrics=metrics,
    )
    result = sim.run(bench.populate)
    if plan is None:
        if result.summary.deadlocked:
            raise RuntimeError(f"webserver deadlocked: {result.summary!r}")
        if bench.requests_done != cfg.total_requests:
            raise RuntimeError(
                f"request loss: {bench.requests_done}/{cfg.total_requests}"
            )
    elapsed = cycles_to_seconds(bench.last_response_cycles) or result.seconds
    lat = sorted(bench.latencies_cycles)
    mean_latency = cycles_to_seconds(sum(lat) // len(lat)) if lat else 0.0
    p99 = cycles_to_seconds(lat[min(len(lat) - 1, int(len(lat) * 0.99))]) if lat else 0.0
    return WebServerResult(
        config=cfg,
        spec=spec,
        scheduler_name=result.scheduler_name,
        requests_done=bench.requests_done,
        elapsed_seconds=elapsed,
        throughput=bench.requests_done / elapsed if elapsed > 0 else 0.0,
        mean_latency_seconds=mean_latency,
        p99_latency_seconds=p99,
        scheduler_fraction=result.scheduler_fraction,
        sim=result,
    )
