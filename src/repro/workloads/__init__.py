"""Workloads: the paper's two experiments plus extensions.

* :mod:`~repro.workloads.volanomark` — the VolanoMark chat benchmark
  (sections 4 and 6; Figures 2-6);
* :mod:`~repro.workloads.kernbench` — the kernel-compile light-load test
  (Table 2);
* :mod:`~repro.workloads.webserver` — the Apache-style server the paper
  proposes as future work (section 8);
* :mod:`~repro.workloads.synthetic` — isolated task mixes for tests and
  ablations.
"""

from .consolidated import ConsolidatedConfig, ConsolidatedResult, run_consolidated
from .kernbench import Kernbench, KernbenchConfig, KernbenchResult, run_kernbench
from .synthetic import (
    SyntheticCounters,
    cpu_hogs,
    fanout_broadcast,
    pingpong_pairs,
    rt_mix,
    yield_storm,
)
from .volanomark import (
    VolanoConfig,
    VolanoMark,
    VolanoResult,
    run_volanomark,
    run_volanomark_rules,
)
from .volanoselect import SelectChat, SelectChatResult, run_select_chat
from .webserver import WebServerConfig, WebServerResult, run_webserver

__all__ = [
    "VolanoConfig",
    "VolanoMark",
    "VolanoResult",
    "run_volanomark",
    "run_volanomark_rules",
    "SelectChat",
    "SelectChatResult",
    "run_select_chat",
    "WebServerConfig",
    "WebServerResult",
    "run_webserver",
    "ConsolidatedConfig",
    "ConsolidatedResult",
    "run_consolidated",
    "Kernbench",
    "KernbenchConfig",
    "KernbenchResult",
    "run_kernbench",
    "SyntheticCounters",
    "cpu_hogs",
    "fanout_broadcast",
    "pingpong_pairs",
    "rt_mix",
    "yield_storm",
]
