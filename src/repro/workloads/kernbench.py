"""The kernel-compile workload (paper section 6, Table 2).

The paper's light-load check: ``time make -j4 bzImage`` on a UP and a 2P
kernel, three runs each, after a warm-up build primes the caches.  The
point of the experiment is *absence of regression* — with at most ``-j``
compile jobs runnable the run queue never grows past a handful of tasks,
and the ELSC scheduler must match the stock scheduler's performance
("maintain existing performance for light loads").

The model is a dependency-free bag of compile jobs (C files) behind a
``make`` job-server that keeps at most ``jobs`` of them in flight,
followed by a serial link step — the actual shape of a kernel build.
Each compile reads its source (a short disk wait), burns CPU through a
few compiler phases separated by pipe-style handoffs, and writes its
object file.  Job durations are drawn deterministically from a seeded
distribution roughly matching a 2.3-era source tree (many small files, a
few giant ones).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..kernel.cost_model import CostModel
from ..kernel.machine import Machine
from ..kernel.mm import MMStruct
from ..kernel.params import seconds_to_cycles
from ..kernel.simulator import MachineSpec, SimResult, Simulator
from ..kernel.sync import Channel

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.base import Scheduler

__all__ = ["KernbenchConfig", "KernbenchResult", "Kernbench", "run_kernbench"]


@dataclass(frozen=True)
class KernbenchConfig:
    """Parameters of one simulated ``make -jN bzImage``."""

    #: Number of translation units to compile.  The paper's 2.3.99 tree
    #: built on the order of 1500 objects; the default is reduced to keep
    #: the simulation quick while preserving the light-load character.
    files: int = 400
    #: ``make -j`` parallelism (the paper used -j4).
    jobs: int = 4
    seed: int = 7
    #: Mean CPU seconds per compile job (400 MHz-era cc1 on a kernel TU).
    mean_compile_seconds: float = 0.9
    #: Disk read latency before a compile starts (warm cache: short).
    read_latency_seconds: float = 0.002
    #: Disk write latency for the object file.
    write_latency_seconds: float = 0.001
    #: CPU seconds for the final serial link/bzImage step.
    link_seconds: float = 8.0
    #: Number of compiler phases (cpp → cc1 → as) per job; each phase
    #: boundary re-enters the scheduler like a pipe handoff does.
    phases: int = 3
    #: Canonical FaultPlan JSON (see repro.faults), "" = no chaos.
    fault_plan: str = ""


@dataclass
class KernbenchResult:
    """Outcome of one simulated kernel build."""

    config: KernbenchConfig
    spec: MachineSpec
    scheduler_name: str
    #: The paper's Table 2 metric: wall-clock build time.
    elapsed_seconds: float
    scheduler_fraction: float
    sim: SimResult

    def minutes_str(self) -> str:
        """Format like the paper's ``time`` output, e.g. ``6:41.41``."""
        from ..analysis.tables import format_minutes

        return format_minutes(self.elapsed_seconds)

    def __repr__(self) -> str:
        return (
            f"<KernbenchResult {self.scheduler_name}/{self.spec.name} "
            f"{self.minutes_str()}>"
        )


class Kernbench:
    """Builds the make + compile-job task population."""

    def __init__(self, config: KernbenchConfig) -> None:
        self.config = config
        self.completed = 0
        self.linked = False
        self._rng = random.Random(config.seed)
        self._durations = [self._draw_duration() for _ in range(config.files)]

    def _draw_duration(self) -> int:
        """CPU cycles for one compile: log-normal-ish file size spread."""
        cfg = self.config
        # Mostly small files, occasionally a big one (sched.c, ll_rw_blk.c…).
        scale = self._rng.lognormvariate(0.0, 0.6)
        return max(
            seconds_to_cycles(0.05),
            seconds_to_cycles(cfg.mean_compile_seconds * scale),
        )

    # -- task bodies -----------------------------------------------------------

    def _compile_job(
        self, env: Any, index: int, done: Channel
    ) -> Generator:
        cfg = self.config
        yield env.sleep(cfg.read_latency_seconds)  # read the source
        total = self._durations[index]
        per_phase = max(1, total // cfg.phases)
        for phase in range(cfg.phases):
            yield env.run(cycles=per_phase)
            if phase != cfg.phases - 1:
                # Pipe handoff between compiler phases: a short block.
                yield env.sleep(cfg.write_latency_seconds / 4)
        yield env.sleep(cfg.write_latency_seconds)  # write the object
        self.completed += 1
        yield env.put(done, index)

    def _link_step(self, env: Any) -> Generator:
        yield env.run(cycles=seconds_to_cycles(self.config.link_seconds))
        self.linked = True

    def _make(self, env: Any, mm: MMStruct) -> Generator:
        """The ``make`` process: a -j job-server over the compile bag."""
        cfg = self.config
        done = Channel(capacity=0, name="make.done")  # unbounded
        next_file = 0
        in_flight = 0
        while next_file < cfg.files and in_flight < cfg.jobs:
            env.spawn(
                lambda e, i=next_file: self._compile_job(e, i, done),
                name=f"cc{next_file}",
                mm=mm,
            )
            next_file += 1
            in_flight += 1
        finished = 0
        while finished < cfg.files:
            yield env.get(done)
            finished += 1
            in_flight -= 1
            yield env.run(us=200)  # make's own dependency bookkeeping
            if next_file < cfg.files:
                env.spawn(
                    lambda e, i=next_file: self._compile_job(e, i, done),
                    name=f"cc{next_file}",
                    mm=mm,
                )
                next_file += 1
                in_flight += 1
        # Serial link + bzImage step.
        yield from self._link_step(env)

    def populate(self, machine: Machine) -> dict[str, Any]:
        mm = MMStruct("build")
        machine.spawn(lambda env: self._make(env, mm), name="make", mm=mm)
        return {
            "completed": lambda: self.completed,
            "linked": lambda: self.linked,
        }


def run_kernbench(
    scheduler_factory: Callable[[], "Scheduler"],
    spec: MachineSpec,
    config: Optional[KernbenchConfig] = None,
    cost: Optional[CostModel] = None,
    prof: Optional[Any] = None,
    metrics: Optional[Any] = None,
) -> KernbenchResult:
    """One simulated kernel build — a Table 2 cell."""
    cfg = config if config is not None else KernbenchConfig()
    bench = Kernbench(cfg)
    plan = None
    if cfg.fault_plan:
        from ..faults import FaultPlan

        plan = FaultPlan.from_config(cfg.fault_plan)
    sim = Simulator(
        scheduler_factory, spec, cost=cost, prof=prof, fault_plan=plan,
        metrics=metrics,
    )
    result = sim.run(bench.populate)
    if plan is None:
        if result.summary.deadlocked:
            raise RuntimeError(f"kernbench deadlocked: {result.summary!r}")
        if result.payload["completed"] != cfg.files or not result.payload["linked"]:
            raise RuntimeError(
                f"incomplete build: {result.payload['completed']}/{cfg.files} "
                f"objects, linked={result.payload['linked']}"
            )
    return KernbenchResult(
        config=cfg,
        spec=spec,
        scheduler_name=result.scheduler_name,
        elapsed_seconds=result.seconds,
        scheduler_fraction=result.scheduler_fraction,
        sim=result,
    )
