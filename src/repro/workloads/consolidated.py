"""A consolidated enterprise server: chat + web + batch on one machine.

The paper's introduction motivates with "network servers, distributed
workstations and other large-scale systems … routers, print and file
servers, firewalls and, of course, web application servers".  Real
enterprise boxes of the era ran several of those at once, and a
scheduler's value shows in how *interactive* services survive a
co-located thread storm.

This workload runs three tenants simultaneously:

* a VolanoMark-style chat service (the thread storm),
* a small web-server worker pool with closed-loop clients (the
  interactive, latency-sensitive tenant),
* a batch compile job (the CPU hog).

The result records each tenant's own metric, so benches can ask the
question the paper's goals imply: does the scheduler keep the web
tenant's latency sane while the chat tenant floods the run queue?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING

from ..kernel.cost_model import CostModel
from ..kernel.machine import Machine
from ..kernel.params import cycles_to_seconds
from ..kernel.simulator import MachineSpec, SimResult, Simulator
from .kernbench import Kernbench, KernbenchConfig
from .volanomark import VolanoConfig, VolanoMark
from .webserver import WebServer, WebServerConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..sched.base import Scheduler

__all__ = ["ConsolidatedConfig", "ConsolidatedResult", "run_consolidated"]


@dataclass(frozen=True)
class ConsolidatedConfig:
    """The three tenants' scaled-down configurations."""

    chat: VolanoConfig = field(
        default_factory=lambda: VolanoConfig(rooms=4, messages_per_user=6)
    )
    web: WebServerConfig = field(
        default_factory=lambda: WebServerConfig(
            workers=8, clients=24, requests_per_client=12
        )
    )
    batch: KernbenchConfig = field(
        default_factory=lambda: KernbenchConfig(
            files=30, jobs=2, mean_compile_seconds=0.08, link_seconds=0.2
        )
    )


@dataclass
class ConsolidatedResult:
    """Per-tenant outcomes of one consolidated run."""

    config: ConsolidatedConfig
    spec: MachineSpec
    scheduler_name: str
    chat_throughput: float
    web_throughput: float
    web_p99_seconds: float
    batch_seconds: float
    elapsed_seconds: float
    scheduler_fraction: float
    sim: SimResult

    def __repr__(self) -> str:
        return (
            f"<ConsolidatedResult {self.scheduler_name}/{self.spec.name} "
            f"chat={self.chat_throughput:.0f}msg/s "
            f"web_p99={self.web_p99_seconds * 1e3:.1f}ms>"
        )


def run_consolidated(
    scheduler_factory: Callable[[], "Scheduler"],
    spec: MachineSpec,
    config: Optional[ConsolidatedConfig] = None,
    cost: Optional[CostModel] = None,
    prof: Optional[Any] = None,
    metrics: Optional[Any] = None,
) -> ConsolidatedResult:
    """Run all three tenants on one machine and collect their metrics."""
    cfg = config if config is not None else ConsolidatedConfig()
    chat = VolanoMark(cfg.chat)
    web = WebServer(cfg.web)
    batch = Kernbench(cfg.batch)
    batch_done_at = {"cycles": 0}

    def populate(machine: Machine):
        chat.populate(machine)
        web.populate(machine)
        batch.populate(machine)
        # Stamp the batch tenant's completion time via the link task.
        for task in machine.all_tasks():
            if task.name == "make":
                task.exit_callbacks.append(
                    lambda t, m=machine: batch_done_at.__setitem__(
                        "cycles", m.clock.now
                    )
                )
        return {}

    sim = Simulator(scheduler_factory, spec, cost=cost, prof=prof, metrics=metrics)
    result = sim.run(populate)
    if result.summary.deadlocked:
        raise RuntimeError(f"consolidated run deadlocked: {result.summary!r}")
    if chat.delivered != cfg.chat.deliveries_expected:
        raise RuntimeError("chat tenant lost messages")
    if web.requests_done != cfg.web.total_requests:
        raise RuntimeError("web tenant lost requests")
    if not batch.linked:
        raise RuntimeError("batch tenant never finished")

    chat_elapsed = cycles_to_seconds(chat.last_delivery_cycles) or result.seconds
    web_elapsed = cycles_to_seconds(web.last_response_cycles) or result.seconds
    latencies = sorted(web.latencies_cycles)
    p99 = (
        cycles_to_seconds(latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))])
        if latencies
        else 0.0
    )
    return ConsolidatedResult(
        config=cfg,
        spec=spec,
        scheduler_name=result.scheduler_name,
        chat_throughput=chat.delivered / chat_elapsed if chat_elapsed else 0.0,
        web_throughput=web.requests_done / web_elapsed if web_elapsed else 0.0,
        web_p99_seconds=p99,
        batch_seconds=cycles_to_seconds(batch_done_at["cycles"]) or result.seconds,
        elapsed_seconds=result.seconds,
        scheduler_fraction=result.scheduler_fraction,
        sim=result,
    )
