"""Named, ready-to-run fault plans for the ``repro chaos`` CLI and CI.

Each entry is a :class:`~repro.faults.plan.FaultPlan` at smoke scale:
faults land within the first millisecond (the smoke workloads finish in
a couple of virtual milliseconds) and plans that can strand work carry a
``horizon_s`` so the run stays finite.  ``resolve_plan`` also accepts inline JSON and
``@file`` references, so plans are not limited to this registry.
"""

from __future__ import annotations

from pathlib import Path

from .plan import FaultPlan, FaultSpec

__all__ = ["NAMED_PLANS", "resolve_plan"]

NAMED_PLANS: dict[str, FaultPlan] = {
    # A VolanoMark server-writer thread dies mid-benchmark; deliveries
    # to its client are lost and the horizon bounds the run.
    "kill-one-worker": FaultPlan(
        name="kill-one-worker",
        seed=1,
        horizon_s=5.0,
        faults=(FaultSpec(kind="task_crash", at_s=0.0005, target="*.sw"),),
    ),
    # A client reader hangs UNINTERRUPTIBLE for 10 ms, then recovers —
    # deliveries finish late but nothing is lost.
    "hang-one-worker": FaultPlan(
        name="hang-one-worker",
        seed=2,
        horizon_s=5.0,
        faults=(
            FaultSpec(
                kind="task_hang", at_s=0.0005, target="*.cr", duration_s=0.01
            ),
        ),
    ),
    # Eight blocked tasks are woken without their condition holding;
    # kernel retry semantics must absorb every one.
    "spurious-storm": FaultPlan(
        name="spurious-storm",
        seed=3,
        horizon_s=5.0,
        faults=(
            FaultSpec(kind="spurious_wakeup", at_s=0.0005, count=8),
            FaultSpec(kind="spurious_wakeup", at_s=0.001, count=8),
        ),
    ),
    # The runqueue-lock hold cost is stretched 50x for 50 ms.
    "lock-stretch": FaultPlan(
        name="lock-stretch",
        seed=4,
        horizon_s=5.0,
        faults=(
            FaultSpec(
                kind="lock_stretch", at_s=0.0002, duration_s=0.05, factor=50.0
            ),
        ),
    ),
    # CPU 1 disappears for 5 ms; its task is displaced and rescheduled.
    "cpu-offline": FaultPlan(
        name="cpu-offline",
        seed=5,
        horizon_s=5.0,
        faults=(
            FaultSpec(kind="cpu_offline", at_s=0.0005, duration_s=0.005, cpu=1),
        ),
    ),
    # Every pending sleep fires 2 ms late.
    "clock-skew": FaultPlan(
        name="clock-skew",
        seed=6,
        horizon_s=5.0,
        faults=(FaultSpec(kind="clock_skew", at_s=0.0005, skew_s=0.002),),
    ),
    # One busy task burns 5 ms of CPU with no forward progress.
    "livelock": FaultPlan(
        name="livelock",
        seed=7,
        horizon_s=5.0,
        faults=(FaultSpec(kind="task_livelock", at_s=0.0005, duration_s=0.005),),
    ),
    # Live serving: admission clamps to zero for a 2-second window, the
    # signature of a 2x offered-load spike — everything beyond capacity
    # is shed with retry-after, and service recovers when it lifts.
    "overload-2x": FaultPlan(
        name="overload-2x",
        seed=8,
        faults=(
            FaultSpec(kind="overload", at_s=1.0, duration_s=2.0, count=0),
        ),
    ),
    # Live serving: the scheduler adapter crashes out of a pick and the
    # supervisor must restart it mid-traffic.
    "crash-executor": FaultPlan(
        name="crash-executor",
        seed=9,
        faults=(FaultSpec(kind="executor_crash", at_s=1.0),),
    ),
    # Cluster chaos: SIGKILL one shard process (seeded pick over the
    # alive shards) one second into the loadtest — the router must
    # promote its replication follower and clients must lose nothing.
    "kill-one-shard": FaultPlan(
        name="kill-one-shard",
        seed=11,
        faults=(FaultSpec(kind="worker_kill", at_s=1.0, target="shard-*"),),
    ),
    # Cluster self-healing: the same SIGKILL, but run with respawn
    # enabled (the default) — the supervisor must respawn the shard,
    # the router must hand its slots back, and the report's ``recovered``
    # gate demands full N-way capacity plus post-recovery throughput
    # within 15% of pre-kill, on top of the zero-drop bar.
    "kill-respawn-shard": FaultPlan(
        name="kill-respawn-shard",
        seed=13,
        faults=(FaultSpec(kind="worker_kill", at_s=1.0, target="shard-*"),),
    ),
}


def resolve_plan(ref: str) -> FaultPlan:
    """A plan from a registry name, inline JSON, or ``@path`` to a file."""
    if ref in NAMED_PLANS:
        return NAMED_PLANS[ref]
    if ref.startswith("@"):
        return FaultPlan.from_config(Path(ref[1:]).read_text())
    if ref.lstrip().startswith("{"):
        return FaultPlan.from_config(ref)
    raise KeyError(
        f"unknown fault plan {ref!r}; named plans: "
        f"{', '.join(sorted(NAMED_PLANS))} (or inline JSON / @file)"
    )
