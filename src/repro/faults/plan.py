"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a schedule of :class:`FaultSpec` entries — *what*
goes wrong, *when* (virtual seconds for kernel faults, wall-clock seconds
for live serving faults), and *to whom* (a glob over task names).  Plans
are plain frozen data so they serialize canonically: :meth:`FaultPlan.
to_config` renders a compact sorted-JSON string that embeds into any
workload config as an ordinary scalar, which means a faulted cell gets a
distinct, stable :class:`~repro.harness.spec.RunSpec` key and caches like
any other cell.

Fault kinds
-----------

Kernel faults (injected into the simulated machine by
:class:`~repro.faults.injector.FaultInjector`):

``task_crash``
    The victim exits immediately, wherever it is — running, queued, or
    blocked on a wait queue.
``task_hang``
    The victim is taken off the run queue and parked UNINTERRUPTIBLE; a
    positive ``duration_s`` schedules a timer that un-hangs it.
``task_livelock``
    The victim's in-flight ``Run`` is inflated by ``duration_s`` worth of
    cycles — CPU burned with no forward progress.
``spurious_wakeup``
    ``count`` blocked tasks are woken without the condition they were
    waiting for (their blocking actions retry, per kernel semantics).
``clock_skew``
    Every pending timer is shifted by ``skew_s`` (clamped to "not before
    now") — sleeps fire late (positive skew) or early (negative).
``lock_stretch``
    The cost model's ``lock_acquire`` charge is multiplied by ``factor``
    for ``duration_s`` virtual seconds — a stand-in for a stretched
    runqueue-lock hold.
``cpu_stall``
    The CPU stops dispatching for ``duration_s``; whatever was running
    resumes on the same CPU afterwards (an SMI-style stall).
``cpu_offline``
    The CPU is taken offline for ``duration_s``: its current task is
    displaced back onto the run queue and rescheduled elsewhere, then the
    CPU comes back online.

Harness faults (honoured by the worker pool, ignored by the kernel):

``worker_kill``
    A pool worker SIGKILLs itself before computing the cell, once: a
    marker file at ``token`` arms the fault, so the retried attempt runs
    clean.  Exercises the runner's crash-safe retry path end to end.

Live-serving faults (honoured by :class:`~repro.faults.live.
LiveFaultDriver`; ``at_s`` is wall-clock from loadtest start):

``overload``
    For ``duration_s`` seconds the server's admission limit is clamped to
    ``count`` pending messages (default 0: shed everything) — the
    client-visible signature of a load spike beyond capacity.  Shed
    replies carry ``retry_after_ms``.
``executor_crash``
    The scheduler adapter raises out of its next pick; supervision must
    restart it and keep serving.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "KERNEL_KINDS",
    "HARNESS_KINDS",
    "LIVE_KINDS",
    "ALL_KINDS",
]

#: Kinds the kernel-level injector acts on.
KERNEL_KINDS = frozenset(
    {
        "task_crash",
        "task_hang",
        "task_livelock",
        "spurious_wakeup",
        "clock_skew",
        "lock_stretch",
        "cpu_stall",
        "cpu_offline",
    }
)
#: Kinds honoured by the harness worker pool.
HARNESS_KINDS = frozenset({"worker_kill"})
#: Kinds honoured by the live serving layer.
LIVE_KINDS = frozenset({"overload", "executor_crash"})
ALL_KINDS = KERNEL_KINDS | HARNESS_KINDS | LIVE_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  Unused knobs stay at their defaults."""

    kind: str
    #: When the fault fires: virtual seconds for kernel faults,
    #: wall-clock seconds from start for live faults.
    at_s: float = 0.0
    #: Glob over task names selecting the victim pool (kernel faults).
    target: str = "*"
    #: How long the condition lasts (hang/livelock/stretch/stall/offline/
    #: overload); 0 means "forever" for hangs, "instant" otherwise.
    duration_s: float = 0.0
    #: Multiplier for lock_stretch.
    factor: float = 1.0
    #: Victim count (crash/hang/wakeup) or admission limit (overload).
    count: int = 1
    #: CPU index for cpu_stall/cpu_offline; -1 picks one deterministically.
    cpu: int = -1
    #: Timer shift for clock_skew (seconds; may be negative).
    skew_s: float = 0.0
    #: Marker-file path arming worker_kill (kill once, then run clean).
    token: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(sorted(ALL_KINDS))}"
            )
        if self.at_s < 0:
            raise ValueError(f"fault at_s must be >= 0, got {self.at_s}")
        if self.duration_s < 0:
            raise ValueError(
                f"fault duration_s must be >= 0, got {self.duration_s}"
            )
        if self.count < 0:
            raise ValueError(f"fault count must be >= 0, got {self.count}")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of faults plus an optional run horizon.

    ``horizon_s`` bounds the virtual run when faults can strand work
    forever (a crashed worker means "all messages delivered" never
    happens); the machine's horizon stop keeps the run finite and the
    summary honest.  ``seed`` makes victim selection deterministic.
    """

    name: str = "plan"
    seed: int = 0
    horizon_s: float = 0.0
    faults: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"faults must be FaultSpec, got {spec!r}")
        if self.horizon_s < 0:
            raise ValueError(f"horizon_s must be >= 0, got {self.horizon_s}")

    # -- canonical serialization ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    def to_config(self) -> str:
        """Compact sorted-JSON string, embeddable in any workload config.

        Workload configs only admit scalar fields, so the plan travels as
        one canonical string; equal plans render byte-identical strings
        and therefore hash to the same :class:`RunSpec` key.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in fields(FaultSpec)}
        faults = tuple(
            FaultSpec(**{k: v for k, v in entry.items() if k in known})
            for entry in data.get("faults", ())
        )
        return cls(
            name=data.get("name", "plan"),
            seed=int(data.get("seed", 0)),
            horizon_s=float(data.get("horizon_s", 0.0)),
            faults=faults,
        )

    @classmethod
    def from_config(cls, text: str) -> "FaultPlan":
        """Parse a plan back out of its :meth:`to_config` string."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be a JSON object, got {data!r}")
        return cls.from_dict(data)

    # -- convenience ------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing and imposes no horizon.

        An empty plan attached to a run is bit-identical to no plan at
        all (the pipeline-identity suites pin that), so callers that
        embed plans into configs — :class:`~repro.scenario.ScenarioSpec`
        in particular — omit empty ones entirely to keep cache keys
        equal to the plain invocation's.
        """
        return not self.faults and self.horizon_s == 0.0

    def kinds(self) -> set:
        return {spec.kind for spec in self.faults}

    def kernel_faults(self) -> tuple:
        return tuple(s for s in self.faults if s.kind in KERNEL_KINDS)

    def live_faults(self) -> tuple:
        return tuple(s for s in self.faults if s.kind in LIVE_KINDS)

    def harness_faults(self) -> tuple:
        return tuple(s for s in self.faults if s.kind in HARNESS_KINDS)
