"""Deterministic kernel-level fault injection.

:class:`FaultInjector` binds to a :class:`~repro.kernel.machine.Machine`
exactly the way the profiler does — ``machine.attach_faults(injector)``
sets one attribute and schedules one CALLBACK event per kernel fault in
the plan.  A machine with no injector attached executes the identical
instruction stream it always did (the zero-cost guarantee the
differential tests pin down); a bound injector with an empty plan
schedules nothing and is equally invisible.

All mutation happens *between* events, from CALLBACK handlers in the
main loop, using the machine's own primitives (``_stop_current_run``,
``_do_exit``, ``wake_up_process``, ``_dispatch``) so invariants hold:
no task is ever mid-``_advance_task`` when a fault lands.

Victim selection is seeded per fault index (``Random(f"{seed}/{i}")``)
over the name-sorted live candidates matching the target glob, so the
same plan over the same workload always picks the same victims.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import replace
from functools import partial
from typing import TYPE_CHECKING, Optional

from ..kernel.actions import Run
from ..kernel.events import EventKind
from ..kernel.params import cycles_to_seconds, seconds_to_cycles
from ..kernel.task import TaskState
from ..obs.probe import FaultEvent, Probe
from .plan import KERNEL_KINDS, FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU
    from ..kernel.machine import Machine
    from ..kernel.task import Task

__all__ = ["FaultInjector"]

_BLOCKED = (TaskState.INTERRUPTIBLE, TaskState.UNINTERRUPTIBLE)


class FaultInjector(Probe):
    """Executes a :class:`FaultPlan` against one machine run.

    A probe with a twist: attachment (``on_attach``) schedules the
    plan's CALLBACK events, and every fired/skipped/restored fault is
    emitted as a :class:`~repro.obs.probe.FaultEvent` through the
    machine's pipeline — this injector's own ``on_fault`` keeps the
    chronological ``log``, and any other fault-kind subscriber (e.g.
    MetricsProbe) sees the same stream.
    """

    kinds = frozenset({"fault"})

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.machine: Optional["Machine"] = None
        #: Chronological record of what was injected (or skipped).
        self.log: list[dict] = []

    # -- attachment --------------------------------------------------------------

    def on_attach(self, host: "Machine") -> None:
        self.bind(host)

    def bind(self, machine: "Machine") -> None:
        """Schedule one CALLBACK per kernel fault; no other footprint."""
        self.machine = machine
        for index, spec in enumerate(self.plan.faults):
            if spec.kind not in KERNEL_KINDS:
                continue  # harness/live faults belong to other layers
            machine.events.schedule(
                seconds_to_cycles(spec.at_s),
                EventKind.CALLBACK,
                partial(_fire_cb, injector=self, index=index),
            )

    # -- event emission ----------------------------------------------------------

    def on_fault(self, ev: FaultEvent) -> None:
        self.log.append(
            {
                "t_s": round(cycles_to_seconds(ev.t), 6),
                "kind": ev.kind,
                "target": ev.target,
                "outcome": ev.outcome,
                "detail": ev.detail,
            }
        )

    def _emit(self, ev: FaultEvent) -> None:
        """Deliver through the pipeline; direct-bound (legacy) injectors
        that are not in the ProbeSet still log their own events."""
        probes = getattr(self.machine, "probes", None)
        seen_self = False
        if probes is not None and probes.fault:
            probes.emit_fault(ev)
            seen_self = any(p is self for p in probes.fault)
        if not seen_self:
            self.on_fault(ev)

    # -- reporting ---------------------------------------------------------------

    def summary(self) -> dict:
        """Injection counts and the event log, for results and the CLI."""
        injected = [e for e in self.log if e["outcome"] == "injected"]
        by_kind: dict[str, int] = {}
        for entry in injected:
            by_kind[entry["kind"]] = by_kind.get(entry["kind"], 0) + 1
        return {
            "plan": self.plan.name,
            "injected": len(injected),
            "skipped": len(self.log) - len(injected),
            "by_kind": by_kind,
            "log": list(self.log),
        }

    def _record(self, spec: FaultSpec, t: int, outcome: str, detail: str) -> None:
        self._emit(FaultEvent(t, spec.kind, spec.target, outcome, detail))

    # -- firing ------------------------------------------------------------------

    def _fire(self, index: int, t: int) -> None:
        spec = self.plan.faults[index]
        handler = getattr(self, f"_do_{spec.kind}")
        handler(spec, index, t)

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"{self.plan.seed}/{index}")

    def _victims(
        self, spec: FaultSpec, index: int, predicate=None
    ) -> list["Task"]:
        assert self.machine is not None
        pool = [
            task
            for task in self.machine.live_tasks()
            if fnmatch.fnmatchcase(task.name, spec.target or "*")
            and (predicate is None or predicate(task))
        ]
        pool.sort(key=lambda task: (task.name, task.pid))
        if not pool:
            return []
        want = min(max(1, spec.count), len(pool))
        return self._rng(index).sample(pool, want)

    def _cpu_of(self, task: "Task") -> Optional["CPU"]:
        assert self.machine is not None
        for cpu in self.machine.cpus:
            if cpu.current is task:
                return cpu
        return None

    def _unpark(self, task: "Task") -> None:
        """Unlink the task from whatever wait queue holds its node.

        Multi-parked ``select()`` entries carry no ``wait_node``; their
        stale queue entries are dropped lazily by ``collect_wakeable``
        once the task exits, or cleaned by the Select retry on wake.
        """
        node = task.wait_node
        if node is not None:
            queue = getattr(node, "queue", None)
            if queue is not None:
                queue.remove(task)
            else:
                task.wait_node = None

    # -- fault handlers ----------------------------------------------------------

    def _do_task_crash(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        victims = self._victims(spec, index)
        if not victims:
            self._record(spec, t, "skipped", "no matching live task")
            return
        for task in victims:
            cpu = self._cpu_of(task)
            if cpu is not None:
                machine._stop_current_run(cpu, t)
                machine._do_exit(task, t)
                machine._dispatch(cpu, t)
            else:
                self._unpark(task)
                machine._do_exit(task, t)
            self._record(spec, t, "injected", f"crashed {task.name}")

    def _do_task_hang(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        victims = self._victims(spec, index, predicate=lambda task: True)
        if not victims:
            self._record(spec, t, "skipped", "no matching live task")
            return
        for task in victims:
            cpu = self._cpu_of(task)
            if cpu is not None:
                machine._stop_current_run(cpu, t)
            self._unpark(task)
            # Leave the runqueue *before* the state flip so no scan ever
            # sees a non-runnable task on the queue.
            machine.scheduler.del_from_runqueue(task)
            task.state = TaskState.UNINTERRUPTIBLE
            if spec.duration_s > 0:
                machine.events.schedule(
                    t + seconds_to_cycles(spec.duration_s),
                    EventKind.TIMER,
                    task,
                )
            if cpu is not None:
                machine._dispatch(cpu, t)
            self._record(
                spec,
                t,
                "injected",
                f"hung {task.name}"
                + (f" for {spec.duration_s}s" if spec.duration_s else " forever"),
            )

    def _do_task_livelock(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        burn = seconds_to_cycles(max(spec.duration_s, 0.001))
        victims = self._victims(
            spec, index, predicate=lambda task: isinstance(task.current_action, Run)
        )
        if not victims:
            self._record(spec, t, "skipped", "no task with a Run in flight")
            return
        for task in victims:
            cpu = self._cpu_of(task)
            if cpu is not None:
                machine._stop_current_run(cpu, t)
            action = task.current_action
            if not isinstance(action, Run):
                # _stop_current_run retired a just-finished run; give the
                # victim a fresh burn instead.
                task.current_action = Run(burn)
            else:
                action.remaining += burn
            if cpu is not None:
                machine._dispatch(cpu, t)
            self._record(
                spec, t, "injected", f"livelocked {task.name} for {burn} cycles"
            )

    def _do_spurious_wakeup(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        victims = self._victims(
            spec,
            index,
            predicate=lambda task: task.state in _BLOCKED and not task.has_cpu,
        )
        if not victims:
            self._record(spec, t, "skipped", "no blocked task to wake")
            return
        for task in victims:
            self._unpark(task)
            machine.wake_up_process(task, t, machine.cpus[0])
            self._record(spec, t, "injected", f"spuriously woke {task.name}")

    def _do_clock_skew(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        delta = seconds_to_cycles(spec.skew_s)
        moved = 0
        # Snapshot: rescheduling pushes onto the same heap.
        for _, _, event in list(machine.events._heap):
            if event.cancelled or event.kind is not EventKind.TIMER:
                continue
            payload = event.payload
            when = max(t, event.time + delta)
            event.cancel()
            machine.events.schedule(when, EventKind.TIMER, payload)
            moved += 1
        outcome = "injected" if moved else "skipped"
        self._record(spec, t, outcome, f"shifted {moved} timers by {spec.skew_s}s")

    def _do_lock_stretch(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        original = machine.cost
        stretched = max(1, int(original.lock_acquire * spec.factor))
        machine.cost = replace(original, lock_acquire=stretched)
        if spec.duration_s > 0:
            machine.events.schedule(
                t + seconds_to_cycles(spec.duration_s),
                EventKind.CALLBACK,
                partial(_restore_cost_cb, injector=self, cost=original),
            )
        self._record(
            spec,
            t,
            "injected",
            f"lock_acquire {original.lock_acquire} -> {stretched}",
        )

    def _pick_cpu(self, spec: FaultSpec, index: int) -> Optional["CPU"]:
        machine = self.machine
        assert machine is not None
        if 0 <= spec.cpu < len(machine.cpus):
            return machine.cpus[spec.cpu]
        if spec.cpu >= len(machine.cpus):
            return None
        return self._rng(index).choice(machine.cpus)

    def _do_cpu_stall(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        cpu = self._pick_cpu(spec, index)
        if cpu is None or cpu.offline:
            self._record(spec, t, "skipped", "no such CPU or already offline")
            return
        machine._stop_current_run(cpu, t)
        cpu.cancel_tick()
        cpu.offline = True
        machine.events.schedule(
            t + seconds_to_cycles(max(spec.duration_s, 0.0001)),
            EventKind.CALLBACK,
            partial(_cpu_resume_cb, injector=self, cpu=cpu),
        )
        self._record(
            spec, t, "injected", f"stalled cpu{cpu.cpu_id} for {spec.duration_s}s"
        )

    def _do_cpu_offline(self, spec: FaultSpec, index: int, t: int) -> None:
        machine = self.machine
        assert machine is not None
        cpu = self._pick_cpu(spec, index)
        if cpu is None or cpu.offline:
            self._record(spec, t, "skipped", "no such CPU or already offline")
            return
        online = [c for c in machine.cpus if not c.offline]
        if len(online) <= 1:
            self._record(spec, t, "skipped", "refusing to offline the last CPU")
            return
        machine._stop_current_run(cpu, t)
        cpu.cancel_tick()
        displaced = cpu.current
        cpu.offline = True
        if displaced is not cpu.idle_task:
            displaced.has_cpu = False
            cpu.current = cpu.idle_task
            cpu.idle_task.has_cpu = True
            cpu.idle_since = t
            # Re-file the task: policies like ELSC keep the picked task
            # "on the runqueue but off-list", so a plain displacement
            # would never be found by the scan again.
            machine.scheduler.del_from_runqueue(displaced)
            machine.scheduler.add_to_runqueue(displaced)
            machine._reschedule_idle(displaced, t)
        machine.events.schedule(
            t + seconds_to_cycles(max(spec.duration_s, 0.0001)),
            EventKind.CALLBACK,
            partial(_cpu_resume_cb, injector=self, cpu=cpu),
        )
        self._record(
            spec,
            t,
            "injected",
            f"offlined cpu{cpu.cpu_id} for {spec.duration_s}s"
            + (
                f", displaced {displaced.name}"
                if displaced is not cpu.idle_task
                else ""
            ),
        )


# CALLBACK payloads are invoked as payload(machine, event); module-level
# functions keep them picklable-shaped and out of the per-event closure.


def _fire_cb(machine, event, injector: FaultInjector, index: int) -> None:
    injector._fire(index, event.time)


def _restore_cost_cb(machine, event, injector: FaultInjector, cost) -> None:
    machine.cost = cost
    injector._emit(
        FaultEvent(
            event.time,
            "lock_stretch",
            "",
            "restored",
            f"lock_acquire back to {cost.lock_acquire}",
        )
    )


def _cpu_resume_cb(machine, event, injector: FaultInjector, cpu) -> None:
    cpu.offline = False
    machine._dispatch(cpu, event.time)
    injector._emit(
        FaultEvent(
            event.time, "cpu_online", "", "restored", f"cpu{cpu.cpu_id} back online"
        )
    )
