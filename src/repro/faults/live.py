"""Wall-clock fault driver for the live serving stack.

The kernel injector speaks virtual cycles; the chat server and its
scheduler executor live on the asyncio clock.  :class:`LiveFaultDriver`
runs beside the load generator and applies the plan's live faults
(``overload`` windows, ``executor_crash``) at their wall-clock offsets,
restoring state when each window closes.  Everything it does is logged
so the loadtest can report what chaos actually landed.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..serve.executor import SchedulerExecutor
    from ..serve.server import ChatServer

__all__ = ["LiveFaultDriver"]


class LiveFaultDriver:
    """Applies a plan's live faults against a running server/executor."""

    def __init__(
        self,
        plan: FaultPlan,
        server: "ChatServer",
        executor: "SchedulerExecutor",
    ) -> None:
        self.plan = plan
        self.server = server
        self.executor = executor
        self.log: list[dict] = []
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        faults = self.plan.live_faults()
        if faults:
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    def _record(self, t: float, kind: str, detail: str) -> None:
        self.log.append({"t_s": round(t, 3), "kind": kind, "detail": detail})

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        start = loop.time()
        # One sub-task per fault keeps overlapping windows independent.
        await asyncio.gather(
            *(self._apply(spec, start) for spec in self.plan.live_faults())
        )

    async def _apply(self, spec, start: float) -> None:
        loop = asyncio.get_running_loop()
        delay = start + spec.at_s - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        now = loop.time() - start
        if spec.kind == "overload":
            previous = self.server.admission_limit
            window_ms = max(1.0, spec.duration_s * 1000.0)
            self.server.set_admission_limit(spec.count, retry_after_ms=window_ms)
            self._record(
                now, "overload", f"admission limit {previous} -> {spec.count}"
            )
            try:
                await asyncio.sleep(max(spec.duration_s, 0.0))
            finally:
                self.server.set_admission_limit(previous)
                self._record(
                    loop.time() - start,
                    "overload",
                    f"admission limit restored to {previous}",
                )
        elif spec.kind == "executor_crash":
            self.executor.inject_crash()
            self._record(now, "executor_crash", "next pick will raise")
