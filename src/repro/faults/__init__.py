"""Seeded, deterministic fault injection for every layer of the repro.

``repro.faults`` turns each existing workload into a resilience
benchmark: a declarative :class:`FaultPlan` schedules chaos (task
crashes, hangs, spurious wakeups, clock skew, lock stretches, CPU
stalls/offlining, worker kills, serving overload) and the matching
injectors apply it — :class:`FaultInjector` inside the simulated kernel,
the worker pool honouring ``worker_kill``, and
:class:`LiveFaultDriver` against the live chat server.  With no plan
attached, every hook is a single attribute test and runs are
bit-identical to a tree without this package.
"""

from .injector import FaultInjector
from .live import LiveFaultDriver
from .plan import (
    ALL_KINDS,
    HARNESS_KINDS,
    KERNEL_KINDS,
    LIVE_KINDS,
    FaultPlan,
    FaultSpec,
)
from .plans import NAMED_PLANS, resolve_plan

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "LiveFaultDriver",
    "NAMED_PLANS",
    "resolve_plan",
    "KERNEL_KINDS",
    "HARNESS_KINDS",
    "LIVE_KINDS",
    "ALL_KINDS",
]
