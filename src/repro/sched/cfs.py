"""A CFS-style fair scheduler — the design that replaced O(1) in 2007.

Included because the reproduction's historical arc (stock → ELSC → O(1))
naturally ends at the Completely Fair Scheduler of Linux 2.6.23: no
quanta, no counters, no recalculation — every task accumulates
**virtual runtime** (weighted by priority) while it executes, and
``schedule()`` always picks the smallest-vruntime runnable task from a
time-ordered tree.

This implementation keeps the 2.3.99 task model (so it runs unmodified
against the same machine and workloads) and scales to it:

* per-CPU timelines, ordered by ``vruntime`` (a sorted list standing in
  for the red-black tree; the cost model charges O(log n)-ish constants
  either way);
* ``vruntime`` advances by ``executed_cycles × (NICE_0_WEIGHT /
  weight(priority))`` — higher `priority` (1..40) means more weight and
  slower vruntime growth, i.e. a larger CPU share;
* a newly woken task's vruntime is placed just ahead of the timeline's
  minimum (the classic sleeper-fairness rule) so sleepers run promptly
  but cannot monopolise;
* real-time tasks keep strict priority: they sort below every fair task
  via an rt band in the key, highest ``rt_priority`` first;
* preemption granularity: the tick marks ``need_resched`` when the
  current task has run past its fair slice (the machine's quantum
  machinery is reused by granting ``counter`` ticks worth of slice).

The ``vruntime`` lives in a per-scheduler dict keyed by pid, keeping the
Table 1 task struct untouched.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Optional

from ..kernel.params import CYCLES_PER_TICK
from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .registry import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["CFSScheduler"]

#: Weight of the default priority (20); weights double every ~5 points,
#: approximating the kernel's nice-level geometric table.
_NICE_0_WEIGHT = 1024

#: Sleeper bonus: a woken task is placed this many vruntime units ahead
#: of the pack minimum (the kernel's "min_vruntime - sched_latency/2"),
#: so interactive tasks run promptly without monopolising.
_SLEEPER_BONUS = CYCLES_PER_TICK


def _weight(priority: int) -> int:
    """CPU-share weight for a 1..40 priority (default 20 → 1024)."""
    # 2**((priority - 20) / 5) scaled; precomputed to avoid float drift.
    return max(16, int(_NICE_0_WEIGHT * 2.0 ** ((priority - 20) / 5.0)))


class _TimelineEntry:
    __slots__ = ("key", "task")

    def __init__(self, key: tuple, task: Task) -> None:
        self.key = key
        self.task = task

    def __lt__(self, other: "_TimelineEntry") -> bool:
        return self.key < other.key


class _Timeline:
    """One CPU's runnable set, ordered by (rt_band, vruntime, pid)."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: list[_TimelineEntry] = []

    def insert(self, key: tuple, task: Task) -> None:
        bisect.insort(self.entries, _TimelineEntry(key, task))

    def remove(self, key: tuple, task: Task) -> None:
        index = bisect.bisect_left(self.entries, _TimelineEntry(key, task))
        while index < len(self.entries):
            entry = self.entries[index]
            if entry.task is task:
                del self.entries[index]
                return
            if entry.key != key:
                break
            index += 1
        raise RuntimeError(f"{task.name} not on the timeline")

    def leftmost(self) -> Optional[Task]:
        return self.entries[0].task if self.entries else None

    def min_fair_vruntime(self) -> Optional[float]:
        for entry in self.entries:
            if entry.key[0] == 1:  # fair band
                return entry.key[1]
        return None

    def __len__(self) -> int:
        return len(self.entries)


@register_scheduler(
    "cfs",
    summary="weighted-fair vruntime timeline",
)
class CFSScheduler(Scheduler):
    """Per-CPU vruntime timelines; always run the leftmost task."""

    name = "cfs"
    uses_global_lock = False

    #: Fair slice granted per dispatch, in ticks (sched_latency / n,
    #: simplified to a constant — the machine's tick machinery enforces
    #: it through ``counter``).
    slice_ticks = 2

    def __init__(self, steal: bool = True) -> None:
        super().__init__()
        self.steal = steal
        self._timelines: list[_Timeline] = []
        #: pid -> (cpu index, key) while queued.
        self._where: dict[int, tuple[int, tuple]] = {}
        #: pid -> accumulated vruntime (survives blocking).
        self._vruntime: dict[int, float] = {}
        #: pid -> cpu_cycles at last dispatch (to charge the delta).
        self._last_cycles: dict[int, int] = {}
        self._running_onqueue = 0

    def reset(self) -> None:
        super().reset()
        count = len(self.machine.cpus) if self.machine is not None else 1
        self._timelines = [_Timeline() for _ in range(count)]
        self._where = {}
        self._vruntime = {}
        self._last_cycles = {}
        self._running_onqueue = 0

    # -- vruntime accounting ---------------------------------------------------

    def _key_for(self, task: Task) -> tuple:
        if task.is_realtime():
            # Band 0: below all fair tasks; higher rt_priority first.
            return (0, -task.rt_priority, task.pid)
        return (1, self._vruntime.get(task.pid, 0.0), task.pid)

    def _charge_runtime(self, task: Task) -> None:
        """Fold the cycles run since last dispatch into vruntime."""
        if task.is_realtime():
            return
        last = self._last_cycles.get(task.pid, task.cpu_cycles)
        delta = task.cpu_cycles - last
        self._last_cycles[task.pid] = task.cpu_cycles
        if delta > 0:
            vdelta = delta * (_NICE_0_WEIGHT / _weight(task.priority))
            self._vruntime[task.pid] = (
                self._vruntime.get(task.pid, 0.0) + vdelta
            )

    def _place_woken(self, task: Task, cpu_idx: int) -> None:
        """Sleeper fairness: wake slightly ahead of the pack minimum,
        never far behind it."""
        if task.is_realtime():
            return
        floor = self._timelines[cpu_idx].min_fair_vruntime()
        current = self._vruntime.get(task.pid, 0.0)
        if floor is not None and current < floor - _SLEEPER_BONUS:
            self._vruntime[task.pid] = floor - _SLEEPER_BONUS

    # -- placement ----------------------------------------------------------------

    def _pick_cpu(self, task: Task) -> int:
        if 0 <= task.processor < len(self._timelines):
            return task.processor
        loads = [len(t) for t in self._timelines]
        return loads.index(min(loads))

    def _enqueue(self, task: Task, cpu_idx: Optional[int] = None) -> None:
        if task.on_runqueue() and task.run_list.prev is None:
            self._running_onqueue -= 1
        idx = self._pick_cpu(task) if cpu_idx is None else cpu_idx
        key = self._key_for(task)
        self._timelines[idx].insert(key, task)
        self._where[task.pid] = (idx, key)
        task.run_list.next = task.run_list
        task.run_list.prev = task.run_list

    # -- run-queue interface ----------------------------------------------------------

    def add_to_runqueue(self, task: Task) -> int:
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        idx = self._pick_cpu(task)
        self._place_woken(task, idx)
        self._last_cycles.setdefault(task.pid, task.cpu_cycles)
        self._enqueue(task, cpu_idx=idx)
        self.stats.enqueues += 1
        return self.cost.list_op + self.cost.elsc_index

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        where = self._where.pop(task.pid, None)
        if where is not None:
            idx, key = where
            self._timelines[idx].remove(key, task)
        elif task.run_list.prev is None:
            self._running_onqueue -= 1
        task.run_list.next = None
        task.run_list.prev = None
        self.stats.dequeues += 1
        return self.cost.list_op

    def move_first_runqueue(self, task: Task) -> None:
        pass  # vruntime order is total; positional bias is meaningless

    def move_last_runqueue(self, task: Task) -> None:
        # sched_yield under CFS: push vruntime to the back of the pack.
        where = self._where.get(task.pid)
        if task.is_realtime():
            return
        timeline = None
        if where is not None:
            idx, key = where
            timeline = self._timelines[idx]
            timeline.remove(key, task)
        pack_max = max(
            (e.key[1] for t in self._timelines for e in t.entries
             if e.key[0] == 1),
            default=self._vruntime.get(task.pid, 0.0),
        )
        self._vruntime[task.pid] = pack_max + 1.0
        if where is not None:
            new_key = self._key_for(task)
            timeline.insert(new_key, task)
            self._where[task.pid] = (where[0], new_key)

    # -- schedule --------------------------------------------------------------------------

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        idle = cpu.idle_task
        cost_cycles = 0
        examined = 0
        prev_yielded = prev is not idle and prev.yield_pending
        my = cpu.cpu_id if cpu.cpu_id < len(self._timelines) else 0

        if prev is not idle:
            self._charge_runtime(prev)
            if prev.is_runnable():
                if prev_yielded:
                    # Fold the yield into vruntime before re-queueing.
                    pack = self._timelines[my].min_fair_vruntime()
                    if pack is not None and not prev.is_realtime():
                        self._vruntime[prev.pid] = max(
                            self._vruntime.get(prev.pid, 0.0), pack + 1.0
                        )
                self._enqueue(prev, cpu_idx=my)
            elif prev.on_runqueue():
                cost_cycles += self.del_from_runqueue(prev)

        self.stats.runqueue_len_sum += self.runqueue_len()

        chosen = self._timelines[my].leftmost()
        if chosen is None and self.steal:
            victim = self._steal_victim(my)
            if victim is not None:
                chosen = self._timelines[victim].leftmost()
        if chosen is not None:
            examined += 1
            idx, key = self._where.pop(chosen.pid)
            self._timelines[idx].remove(key, chosen)
            chosen.run_list.next = chosen.run_list
            chosen.run_list.prev = None
            self._running_onqueue += 1
            self._last_cycles[chosen.pid] = chosen.cpu_cycles
            # Grant exactly the fair slice through the machine's tick
            # machinery (the 2.3.99 counter field repurposed as a slice).
            if not chosen.is_realtime():
                chosen.counter = self.slice_ticks
            if prev_yielded and chosen is prev:
                self.stats.yield_reruns += 1
        if prev is not idle and prev.yield_pending:
            prev.yield_pending = False

        cost_cycles += self.cost.schedule_entry + self.cost.elsc_examine
        self.stats.tasks_examined += examined
        self.stats.scheduler_cycles += cost_cycles
        return SchedDecision(
            next_task=chosen,
            cost=cost_cycles,
            examined=examined,
            eval_cycles=self.cost.elsc_examine,
        )

    def _steal_victim(self, my: int) -> Optional[int]:
        best = None
        best_load = 0
        for i, timeline in enumerate(self._timelines):
            if i == my:
                continue
            if len(timeline) > best_load:
                best = i
                best_load = len(timeline)
        return best

    # -- introspection ------------------------------------------------------------------------

    def runqueue_len(self) -> int:
        return sum(len(t) for t in self._timelines) + self._running_onqueue

    def runqueue_tasks(self) -> list[Task]:
        out: list[Task] = []
        for timeline in self._timelines:
            out.extend(e.task for e in timeline.entries)
        return out

    def vruntime_of(self, task: Task) -> float:
        """Accumulated virtual runtime (tests and examples)."""
        return self._vruntime.get(task.pid, 0.0)
