"""An O(1)-style scheduler — the design that eventually replaced both.

Linux 2.5 replaced the goodness scan with Ingo Molnár's O(1) scheduler:
per-CPU run queues, each holding an *active* and an *expired* priority
array with a find-first-set bitmap.  A task that exhausts its timeslice
moves to the expired array; when the active array drains the two arrays
swap — no whole-system recalculation loop at all.

This module implements that design scaled to the 2.3.99 task model so it
can run unmodified against the same machine, workloads, and benches as
the paper's schedulers:

* priority slots 0–99: real-time (``rt_priority`` 99 → slot 0);
* slots 100–139: SCHED_OTHER (``priority`` 40 → slot 100), so the
  existing 1–40 priority field maps onto the array directly;
* timeslice granted on expiry is the task's ``priority`` in ticks, the
  same refill the 2.3.99 recalculation would converge to;
* wakeups enqueue on the task's last CPU (least-loaded for new tasks);
  an idle CPU steals the highest-priority queued task elsewhere.

The bitmap is a Python integer; find-first-set is ``bit_length`` on the
isolated lowest bit — O(1) in spirit and in charged cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.listops import ListHead
from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .registry import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["O1Scheduler"]

#: Total priority slots: 100 real-time + 40 time-sharing.
_NR_SLOTS = 140
_RT_SLOTS = 100


def _slot_for(task: Task) -> int:
    """Array slot (lower = more important)."""
    if task.is_realtime():
        return _RT_SLOTS - 1 - min(task.rt_priority, _RT_SLOTS - 1)
    return _RT_SLOTS + (40 - task.priority)


class _PriorityArray:
    """One active/expired half: 140 FIFO lists plus a bitmap."""

    __slots__ = ("queues", "bitmap", "count")

    def __init__(self) -> None:
        self.queues = [ListHead() for _ in range(_NR_SLOTS)]
        self.bitmap = 0
        self.count = 0

    def enqueue(self, task: Task, slot: int, front: bool = False) -> None:
        node = task.run_list
        node.init()
        if front:
            node.add(self.queues[slot])
        else:
            node.add_tail(self.queues[slot])
        self.bitmap |= 1 << slot
        self.count += 1

    def dequeue(self, task: Task, slot: int) -> None:
        task.run_list.del_()
        self.count -= 1
        if self.queues[slot].empty():
            self.bitmap &= ~(1 << slot)

    def first_slot(self) -> Optional[int]:
        if self.bitmap == 0:
            return None
        lowest = self.bitmap & -self.bitmap
        return lowest.bit_length() - 1

    def first_task(self) -> Optional[Task]:
        slot = self.first_slot()
        if slot is None:
            return None
        node = self.queues[slot].first()
        return node.owner if node is not None else None


class _RunQueue:
    """One CPU's pair of arrays."""

    __slots__ = ("active", "expired")

    def __init__(self) -> None:
        self.active = _PriorityArray()
        self.expired = _PriorityArray()

    def swap_if_drained(self) -> bool:
        if self.active.count == 0 and self.expired.count > 0:
            self.active, self.expired = self.expired, self.active
            return True
        return False

    @property
    def total(self) -> int:
        return self.active.count + self.expired.count


@register_scheduler(
    "o1",
    summary="per-CPU active/expired bitmap arrays (2.6-style O(1))",
)
class O1Scheduler(Scheduler):
    """Per-CPU active/expired bitmap arrays (the 2.5-era design)."""

    name = "o1"
    uses_global_lock = False
    per_cpu_queues = True

    def __init__(self, steal: bool = True) -> None:
        super().__init__()
        self.steal = steal
        self._queues: list[_RunQueue] = []
        #: pid -> (cpu index, array, slot) while queued.
        self._where: dict[int, tuple[int, _PriorityArray, int]] = {}
        self._running_onqueue = 0

    def reset(self) -> None:
        super().reset()
        count = len(self.machine.cpus) if self.machine is not None else 1
        self._queues = [_RunQueue() for _ in range(count)]
        self._where = {}
        self._running_onqueue = 0

    # -- placement ------------------------------------------------------------------

    def _pick_cpu(self, task: Task) -> int:
        if 0 <= task.processor < len(self._queues):
            return task.processor
        loads = [q.total for q in self._queues]
        return loads.index(min(loads))

    def _enqueue(
        self,
        task: Task,
        cpu_idx: Optional[int] = None,
        expired: bool = False,
        front: bool = False,
    ) -> None:
        if task.on_runqueue() and task.run_list.prev is None:
            self._running_onqueue -= 1
        idx = self._pick_cpu(task) if cpu_idx is None else cpu_idx
        rq = self._queues[idx]
        array = rq.expired if expired else rq.active
        slot = _slot_for(task)
        array.enqueue(task, slot, front=front)
        self._where[task.pid] = (idx, array, slot)

    # -- run-queue interface ------------------------------------------------------------

    def add_to_runqueue(self, task: Task) -> int:
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        if task.counter == 0:
            task.counter = task.priority  # fresh timeslice on wakeup
        self._enqueue(task)
        self.stats.enqueues += 1
        return self.cost.list_op + self.cost.elsc_index

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        where = self._where.pop(task.pid, None)
        if where is not None:
            _, array, slot = where
            array.dequeue(task, slot)
        elif task.run_list.prev is None:
            self._running_onqueue -= 1
        task.run_list.next = None
        task.run_list.prev = None
        self.stats.dequeues += 1
        return self.cost.list_op

    def move_first_runqueue(self, task: Task) -> None:
        where = self._where.get(task.pid)
        if where is None:
            return
        cpu_idx, array, slot = where
        array.dequeue(task, slot)
        array.enqueue(task, slot, front=True)

    def move_last_runqueue(self, task: Task) -> None:
        where = self._where.get(task.pid)
        if where is None:
            return
        cpu_idx, array, slot = where
        array.dequeue(task, slot)
        array.enqueue(task, slot, front=False)

    # -- schedule ------------------------------------------------------------------------

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        idle = cpu.idle_task
        cost_cycles = 0
        examined = 0
        prev_yielded = prev is not idle and prev.yield_pending
        my = cpu.cpu_id if cpu.cpu_id < len(self._queues) else 0
        rq = self._queues[my]

        if prev is not idle:
            if prev.is_runnable():
                if prev.counter == 0:
                    # Timeslice expired: refill and park in the expired
                    # array (real-time FIFO tasks never expire here; RR
                    # rotates within the active array).
                    if prev.policy is SchedPolicy.SCHED_FIFO:
                        self._enqueue(prev, cpu_idx=my, front=True)
                    else:
                        prev.counter = prev.priority
                        if prev.policy is SchedPolicy.SCHED_RR:
                            self._enqueue(prev, cpu_idx=my)
                        else:
                            self._enqueue(prev, cpu_idx=my, expired=True)
                elif prev_yielded:
                    # sched_yield: back of the current slot.
                    self._enqueue(prev, cpu_idx=my)
                else:
                    self._enqueue(prev, cpu_idx=my, front=True)
            elif prev.on_runqueue():
                cost_cycles += self.del_from_runqueue(prev)

        self.stats.runqueue_len_sum += self.runqueue_len()

        rq.swap_if_drained()
        chosen = self._dequeue_first(my, prev)
        if chosen is None and self.steal:
            victim = self._steal_victim(my)
            if victim is not None:
                chosen = self._dequeue_first(victim, prev)
        if chosen is not None:
            examined += 1
            chosen.run_list.next = chosen.run_list
            chosen.run_list.prev = None
            self._running_onqueue += 1
            if prev_yielded and chosen is prev:
                self.stats.yield_reruns += 1
        if prev is not idle and prev.yield_pending:
            prev.yield_pending = False

        # O(1): entry overhead plus a constant per decision — no scan.
        cost_cycles += self.cost.schedule_entry + self.cost.elsc_examine
        self.stats.tasks_examined += examined
        self.stats.scheduler_cycles += cost_cycles
        return SchedDecision(
            next_task=chosen,
            cost=cost_cycles,
            examined=examined,
            eval_cycles=self.cost.elsc_examine,
        )

    def _dequeue_first(self, cpu_idx: int, prev: Task) -> Optional[Task]:
        rq = self._queues[cpu_idx]
        rq.swap_if_drained()
        array = rq.active
        slot = array.first_slot()
        while slot is not None:
            for node in array.queues[slot]:
                task: Task = node.owner
                if task.has_cpu and task is not prev:
                    continue
                array.dequeue(task, slot)
                self._where.pop(task.pid, None)
                return task
            # Every task in this slot is running elsewhere; mask it out
            # of consideration by walking to the next set bit.
            higher = array.bitmap >> (slot + 1)
            if higher == 0:
                break
            lowest = higher & -higher
            slot = slot + 1 + lowest.bit_length() - 1
        return None

    def _steal_victim(self, my: int) -> Optional[int]:
        best = None
        best_load = 0
        for i, rq in enumerate(self._queues):
            if i == my:
                continue
            if rq.total > best_load:
                best = i
                best_load = rq.total
        return best

    # -- introspection ------------------------------------------------------------------------

    def runqueue_len(self) -> int:
        return sum(rq.total for rq in self._queues) + self._running_onqueue

    def runqueue_tasks(self) -> list[Task]:
        out: list[Task] = []
        for rq in self._queues:
            for array in (rq.active, rq.expired):
                for queues in array.queues:
                    out.extend(node.owner for node in queues)
        return out
