"""The single scheduler registry every layer consumes.

Before this module existed, knowing "which schedulers are there, and
what does ``'multiqueue'`` mean?" required three separate tables —
``harness/registry.py``, the CLI alias map, and per-layer copies in
``bench``/``scenario``.  Now a scheduler module declares itself once::

    @register_scheduler("clutch", aliases=("sched_clutch",),
                        summary="XNU-Clutch-style hierarchy")
    class ClutchScheduler(Scheduler):
        name = "clutch"
        ...

and the CLI vocabulary, the bench matrix, the scenario catalogue, the
serve executor, and the cluster config all see it automatically via
:func:`all_schedulers` / :func:`resolve` / :func:`create`.

Capability flags (``uses_global_lock``, ``per_cpu_queues``,
``hierarchical``) are read off the class at registration time and
carried in the :class:`SchedulerInfo` record so layers can reason
about a policy ("does this serialise on the global lock?") without
instantiating it.

Registration order is **not** presentation order: modules may be
imported in any order (``repro.sched`` imports alphabetically, the
harness imports by dependency), so :func:`scheduler_names` returns the
pinned :data:`_PREFERRED_ORDER` first — keeping bench matrix hashes
and catalogue listings stable — with any out-of-tree registrations
sorted alphabetically after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type

from .base import Scheduler

__all__ = [
    "SchedulerInfo",
    "register_scheduler",
    "resolve",
    "get",
    "create",
    "all_schedulers",
    "scheduler_names",
    "alias_map",
]


@dataclass(frozen=True)
class SchedulerInfo:
    """One registered scheduling policy: identity, factory, capabilities."""

    #: Canonical short name ("reg", "elsc", "clutch", …).
    name: str
    #: The scheduler class (callable with no required arguments).
    factory: Type[Scheduler]
    #: Accepted synonyms, resolved to :attr:`name` everywhere.
    aliases: tuple = ()
    #: One-line human description for listings and docs.
    summary: str = ""
    #: Capability flags, read off the class at registration time.
    uses_global_lock: bool = True
    per_cpu_queues: bool = False
    hierarchical: bool = False


#: Canonical name -> info, in registration order (presentation order is
#: :data:`_PREFERRED_ORDER`; see :func:`scheduler_names`).
_REGISTRY: dict[str, SchedulerInfo] = {}

#: Alias -> canonical name.
_ALIASES: dict[str, str] = {}

#: Pinned presentation order for the in-tree policies.  Names not
#: listed here (out-of-tree registrations) sort alphabetically after.
_PREFERRED_ORDER = (
    "reg",
    "elsc",
    "heap",
    "mq",
    "o1",
    "cfs",
    "clutch",
    "relaxed_mq",
)

_LOADED = False


def register_scheduler(
    name: str,
    aliases: tuple = (),
    summary: str = "",
) -> Callable[[Type[Scheduler]], Type[Scheduler]]:
    """Class decorator registering a :class:`Scheduler` under ``name``.

    Collisions — a second registration of the same name, or an alias
    that shadows a canonical name or another alias — raise
    ``ValueError`` immediately, at import time, so a typo can't
    silently hijack an existing policy.
    """

    def _decorate(cls: Type[Scheduler]) -> Type[Scheduler]:
        if name in _REGISTRY:
            raise ValueError(f"scheduler {name!r} already registered")
        if name in _ALIASES:
            raise ValueError(
                f"scheduler name {name!r} collides with an alias for "
                f"{_ALIASES[name]!r}"
            )
        for alias in aliases:
            if alias in _REGISTRY:
                raise ValueError(
                    f"alias {alias!r} collides with registered "
                    f"scheduler {alias!r}"
                )
            if alias in _ALIASES:
                raise ValueError(
                    f"alias {alias!r} already maps to {_ALIASES[alias]!r}"
                )
        info = SchedulerInfo(
            name=name,
            factory=cls,
            aliases=tuple(aliases),
            summary=summary,
            uses_global_lock=bool(getattr(cls, "uses_global_lock", True)),
            per_cpu_queues=bool(getattr(cls, "per_cpu_queues", False)),
            hierarchical=bool(getattr(cls, "hierarchical", False)),
        )
        _REGISTRY[name] = info
        for alias in aliases:
            _ALIASES[alias] = name
        return cls

    return _decorate


def _ensure_loaded() -> None:
    """Import every in-tree scheduler module (idempotent).

    Registration happens as a side effect of importing the module that
    defines the class, so any entry point that consults the registry
    first must pull the in-tree set in.
    """
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Import order is irrelevant to presentation order (see
    # _PREFERRED_ORDER) — listed by dependency layer for clarity.
    from . import cfs, clutch, heap, multiqueue, o1, relaxed_mq, vanilla  # noqa: F401
    from ..core import elsc  # noqa: F401


def resolve(name: str) -> str:
    """Canonical scheduler name for ``name`` (aliases resolved).

    Raises ``KeyError`` with the full vocabulary for an unknown name.
    """
    _ensure_loaded()
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; choose from "
            f"{scheduler_names() + sorted(_ALIASES)}"
        )
    return canonical


def get(name: str) -> SchedulerInfo:
    """The :class:`SchedulerInfo` for ``name`` (aliases accepted)."""
    return all_schedulers()[resolve(name)]


def create(name: str, **kwargs) -> Scheduler:
    """Instantiate the scheduler registered under ``name``."""
    return get(name).factory(**kwargs)


def scheduler_names() -> list[str]:
    """Canonical names in pinned presentation order.

    In-tree policies come first in :data:`_PREFERRED_ORDER`; anything
    registered from outside the tree sorts alphabetically after, so
    matrix hashes and listings don't depend on import order.
    """
    _ensure_loaded()
    known = [n for n in _PREFERRED_ORDER if n in _REGISTRY]
    extras = sorted(n for n in _REGISTRY if n not in _PREFERRED_ORDER)
    return known + extras


def all_schedulers() -> dict[str, SchedulerInfo]:
    """Every registered policy, canonical name -> info, in presentation
    order."""
    _ensure_loaded()
    return {n: _REGISTRY[n] for n in scheduler_names()}


def alias_map() -> dict[str, str]:
    """Alias -> canonical name, for vocabulary listings."""
    _ensure_loaded()
    return dict(sorted(_ALIASES.items()))
