"""Schedulers: the interface, the stock baseline, and alternative designs."""

from .base import ProbeHost, SchedDecision, Scheduler
from .goodness import (
    dynamic_bonus,
    goodness,
    preemption_goodness,
    prev_goodness,
    static_goodness,
)
from .cfs import CFSScheduler
from .clutch import ClutchScheduler
from .heap import HeapScheduler
from .multiqueue import MultiQueueScheduler
from .o1 import O1Scheduler
from .registry import (
    SchedulerInfo,
    all_schedulers,
    alias_map,
    create,
    register_scheduler,
    resolve,
    scheduler_names,
)
from .relaxed_mq import RelaxedMQScheduler
from .stats import SchedStats
from .vanilla import VanillaScheduler

__all__ = [
    "SchedDecision",
    "Scheduler",
    "ProbeHost",
    "SchedStats",
    "SchedulerInfo",
    "register_scheduler",
    "resolve",
    "create",
    "all_schedulers",
    "scheduler_names",
    "alias_map",
    "VanillaScheduler",
    "HeapScheduler",
    "CFSScheduler",
    "ClutchScheduler",
    "MultiQueueScheduler",
    "O1Scheduler",
    "RelaxedMQScheduler",
    "goodness",
    "prev_goodness",
    "preemption_goodness",
    "dynamic_bonus",
    "static_goodness",
]
