"""Schedulers: the interface, the stock baseline, and alternative designs."""

from .base import SchedDecision, Scheduler
from .goodness import (
    dynamic_bonus,
    goodness,
    preemption_goodness,
    prev_goodness,
    static_goodness,
)
from .cfs import CFSScheduler
from .heap import HeapScheduler
from .multiqueue import MultiQueueScheduler
from .o1 import O1Scheduler
from .stats import SchedStats
from .vanilla import VanillaScheduler

__all__ = [
    "SchedDecision",
    "Scheduler",
    "SchedStats",
    "VanillaScheduler",
    "HeapScheduler",
    "CFSScheduler",
    "MultiQueueScheduler",
    "O1Scheduler",
    "goodness",
    "prev_goodness",
    "preemption_goodness",
    "dynamic_bonus",
    "static_goodness",
]
