"""The 2.3.99 ``goodness()`` heuristic (paper section 3.3.1).

For real-time tasks (SCHED_FIFO / SCHED_RR) goodness is ``1000 +
rt_priority`` — always above any time-sharing task.  For SCHED_OTHER
tasks:

* ``counter == 0`` → goodness 0 ("a runnable task was found but its time
  slice is used up");
* otherwise ``counter + priority``, plus a **+1** bonus for sharing the
  deciding context's memory map (cheap context switch) and a **+15**
  bonus for having last run on the deciding CPU (warm caches).

The paper's key observation is that ``counter + priority`` is *static*
while a task waits on the run queue, and only the two bonuses are
*dynamic* (they depend on who is asking).  ELSC sorts by the static part
and evaluates the dynamic part over a handful of candidates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.params import MM_BONUS, PROC_CHANGE_PENALTY, RT_GOODNESS_BASE

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.mm import MMStruct
    from ..kernel.task import Task

__all__ = [
    "goodness",
    "prev_goodness",
    "preemption_goodness",
    "dynamic_bonus",
    "static_goodness",
]


def goodness(task: "Task", this_cpu: int, this_mm: Optional["MMStruct"]) -> int:
    """Utility of running ``task`` next on ``this_cpu`` after ``this_mm``."""
    if task.is_realtime():
        return RT_GOODNESS_BASE + task.rt_priority
    if task.counter == 0:
        return 0
    weight = task.counter + task.priority
    if task.mm is not None and task.mm is this_mm:
        weight += MM_BONUS
    if task.processor == this_cpu:
        weight += PROC_CHANGE_PENALTY
    return weight


def prev_goodness(task: "Task", this_cpu: int, this_mm: Optional["MMStruct"]) -> int:
    """Goodness of the previous task: zero while its SCHED_YIELD bit is set."""
    if task.yield_pending:
        return 0
    return goodness(task, this_cpu, this_mm)


def preemption_goodness(candidate: "Task", current: "Task", cpu: int) -> int:
    """How much better ``candidate`` is than ``current`` on ``cpu``.

    Positive means a wakeup should preempt — the test ``reschedule_idle``
    applies when no processor is idle.
    """
    return goodness(candidate, cpu, current.mm) - goodness(current, cpu, current.mm)


def dynamic_bonus(task: "Task", this_cpu: int, this_mm: Optional["MMStruct"]) -> int:
    """Just the dynamic part (mm + affinity bonuses) for a non-RT task."""
    bonus = 0
    if task.mm is not None and task.mm is this_mm:
        bonus += MM_BONUS
    if task.processor == this_cpu:
        bonus += PROC_CHANGE_PENALTY
    return bonus


def static_goodness(task: "Task") -> int:
    """The static part: ``counter + priority`` (delegates to the task)."""
    return task.static_goodness()
