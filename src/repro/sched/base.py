"""The scheduler interface both designs implement.

The paper's design goal #1 was "keep changes local to the scheduler; do
not change current interfaces" — the ELSC patch replaces the bodies of
``schedule()`` and the four run-queue manipulation functions
(``add_to_runqueue``, ``del_from_runqueue``, ``move_first_runqueue``,
``move_last_runqueue``) and nothing else.  This module pins down exactly
that interface so the machine is scheduler-agnostic and alternative
designs (heap, multi-queue, O(1)) plug in the same way.

API v2 widens the surface with *optional* lifecycle hooks — ``on_tick``,
``on_fork``, ``on_exit``, ``task_group``, ``per_cpu_queue_lens`` — all
defaulted to no-ops so the flat five-function designs run unmodified,
while hierarchical designs (Clutch) get the group/tick signals they
need.  Hosts detect overridden hooks at bind time (``type(sched).on_tick
is not Scheduler.on_tick``) so a default hook costs nothing on the hot
path.  The host side of the contract is the :class:`ProbeHost`
protocol: the structural type every bound "machine" — the real
:class:`~repro.kernel.machine.Machine`, the serve executor's shim, test
fakes — satisfies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from .stats import SchedStats

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cost_model import CostModel
    from ..kernel.cpu import CPU
    from ..kernel.task import Task
    from ..obs.probe import ProbeSet

__all__ = ["Scheduler", "SchedDecision", "ProbeHost"]


@runtime_checkable
class ProbeHost(Protocol):
    """What a scheduler may assume about the machine it is bound to.

    This formalises the duck type that used to live in ``getattr``
    calls: the real :class:`~repro.kernel.machine.Machine`, the serve
    executor's ``_ExecutorMachine`` shim, and test fakes all satisfy
    it.  ``probes`` is always present (an empty
    :class:`~repro.obs.probe.ProbeSet` when nothing is attached), so
    emission sites test ``host.probes.sched`` directly instead of
    ``getattr(machine, "probes", None)``.
    """

    cost: "CostModel"
    smp: bool
    cpus: Sequence
    probes: "ProbeSet"

    @property
    def clock(self):  # pragma: no cover - structural only
        """Virtual clock with an integer ``now`` attribute."""
        ...

    def live_tasks(self) -> Iterable["Task"]:
        """Every live task in the system (``for_each_task``)."""
        ...


@dataclass
class SchedDecision:
    """Outcome of one ``schedule()`` invocation.

    ``next_task is None`` means "run the idle task".  ``cost`` is the
    cycle charge for the decision itself (the machine adds lock and
    context-switch charges on top).

    ``eval_cycles`` and ``recalc_cycles`` split ``cost`` for the
    profiler: cycles spent evaluating goodness/utility and cycles spent
    in whole-system counter recalculation (including any structure
    rebuild it forces).  The remainder, ``cost - eval_cycles -
    recalc_cycles``, is the ``pick`` phase.  The split cannot be
    recovered after the fact (recalculation cost depends on the live
    task count at the moment it ran), so schedulers report it here.
    """

    next_task: Optional["Task"]
    cost: int
    examined: int = 0
    recalcs: int = 0
    eval_cycles: int = 0
    recalc_cycles: int = 0


class Scheduler(abc.ABC):
    """Pluggable scheduling policy over the machine's run queue."""

    #: Short identifier used in benches and /proc output ("reg", "elsc", …).
    name: str = "abstract"

    #: Whether every schedule()/wakeup serialises on the single global
    #: runqueue lock (true for the 2.3.99 designs the paper studies).
    #: Per-CPU-queue designs (multiqueue, O(1)) set this False and the
    #: machine charges only uncontended lock costs.
    uses_global_lock: bool = True

    #: Whether the design maintains genuinely per-CPU ready structures
    #: (multiqueue, O(1), relaxed_mq); purely informational for layers
    #: that reason about policies without instantiating them.
    per_cpu_queues: bool = False

    #: Whether the design schedules through a hierarchy (groups/buckets
    #: above tasks) rather than one flat ready list (clutch).
    hierarchical: bool = False

    def __init__(self) -> None:
        self.stats = SchedStats()
        self.machine: Optional[ProbeHost] = None

    # -- lifecycle -----------------------------------------------------------

    def bind(self, machine: ProbeHost) -> None:
        """Attach to a machine; called once before the simulation starts."""
        self.machine = machine
        self.reset()

    def reset(self) -> None:
        """Clear run-queue structures and statistics."""
        self.stats = SchedStats()

    # -- convenience accessors ------------------------------------------------

    @property
    def cost(self) -> "CostModel":
        assert self.machine is not None, "scheduler not bound to a machine"
        return self.machine.cost

    @property
    def smp(self) -> bool:
        assert self.machine is not None, "scheduler not bound to a machine"
        return self.machine.smp

    @property
    def nr_cpus(self) -> int:
        assert self.machine is not None, "scheduler not bound to a machine"
        return len(self.machine.cpus)

    def all_tasks(self) -> Iterable["Task"]:
        """``for_each_task``: every live task in the system."""
        assert self.machine is not None, "scheduler not bound to a machine"
        return self.machine.live_tasks()

    # -- the kernel interface (paper section 5.1) ------------------------------

    @abc.abstractmethod
    def add_to_runqueue(self, task: "Task") -> int:
        """Make ``task`` selectable; returns the cycle cost of the insert.

        Called on wakeup and when a new task starts.  The cost is returned
        (not self-charged) because it lands on the *waking* context's
        timeline, which the machine owns.
        """

    @abc.abstractmethod
    def del_from_runqueue(self, task: "Task") -> int:
        """Remove ``task`` from the run queue; returns the cycle cost."""

    @abc.abstractmethod
    def move_first_runqueue(self, task: "Task") -> None:
        """Bias ``task`` to win goodness() ties (front of its list)."""

    @abc.abstractmethod
    def move_last_runqueue(self, task: "Task") -> None:
        """Bias ``task`` to lose goodness() ties (back of its list)."""

    @abc.abstractmethod
    def schedule(self, prev: "Task", cpu: "CPU") -> SchedDecision:
        """Pick the task to succeed ``prev`` on ``cpu``.

        Contract (mirroring the kernel):

        * ``prev.has_cpu`` is still True on entry; implementations must
          not select any *other* task whose ``has_cpu`` is set.
        * If ``prev`` is no longer runnable it must leave the run queue.
        * A pending SCHED_YIELD on ``prev`` must be honoured (goodness 0 /
          candidate of last resort) and cleared.
        * Implementations update ``self.stats`` themselves.
        """

    # -- optional lifecycle hooks (API v2) --------------------------------------
    #
    # All default to no-ops so flat designs run unmodified.  Hosts check
    # ``type(scheduler).on_tick is not Scheduler.on_tick`` once at bind
    # time and skip the call entirely when the default is in place, so a
    # policy that doesn't care pays zero cycles and keeps bit-identity.

    def on_tick(self, task: "Task", cpu_id: int) -> None:
        """A timer tick was charged to ``task`` on CPU ``cpu_id``.

        Fired *after* the host decremented ``task.counter`` (the
        quantum rule stays host-owned so every host applies it
        identically).  Hierarchical designs use this to advance their
        internal notion of time.
        """

    def on_fork(self, task: "Task") -> None:
        """``task`` was created, before its first wakeup."""

    def on_exit(self, task: "Task") -> None:
        """``task`` exited and has left the run queue for good."""

    def task_group(self, task: "Task"):
        """The grouping key ``task`` schedules under.

        Defaults to the address space (``task.mm``), falling back to
        the pid for kernel-thread-like tasks without one — the closest
        analogue of a thread group the simulator has.  Deterministic:
        ``mm`` objects are only ever used as dict keys (insertion
        ordered), never sorted by ``id()``.
        """
        return task.mm if task.mm is not None else task.pid

    def per_cpu_queue_lens(self) -> list[int]:
        """Ready-task count per internal queue (one entry per queue).

        Flat designs report a single global entry; per-CPU designs
        report one per lane/CPU.  For introspection and tests.
        """
        return [self.runqueue_len()]

    # -- introspection ----------------------------------------------------------

    @abc.abstractmethod
    def runqueue_len(self) -> int:
        """Number of tasks currently considered on the run queue."""

    @abc.abstractmethod
    def runqueue_tasks(self) -> list["Task"]:
        """Snapshot of queued tasks (order meaningful per design); for tests."""

    # -- shared helpers ---------------------------------------------------------

    def recalculate_counters(self) -> int:
        """The recalculation loop: ``counter = counter//2 + priority``.

        Runs over **every task in the system**, runnable or not (paper
        section 3.3.2), and returns its cycle cost.  Subclasses may
        override to add structure maintenance (ELSC flips top/next_top).
        """
        count = 0
        for task in self.all_tasks():
            task.counter = (task.counter >> 1) + task.priority
            count += 1
        self.stats.recalc_entries += 1
        machine = self.machine
        assert machine is not None, "scheduler not bound to a machine"
        # Every bound host satisfies ProbeHost — the full Machine, the
        # serve executor's shim, and test fakes alike — so probes is
        # always present (empty ProbeSet when detached).
        if machine.probes.sched:
            from ..obs.probe import RecalcEvent

            probes = machine.probes
            probes.emit_sched(RecalcEvent(machine.clock.now, count))
        return self.cost.recalc_cost(count)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} qlen={self.runqueue_len()}>"
