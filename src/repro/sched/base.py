"""The scheduler interface both designs implement.

The paper's design goal #1 was "keep changes local to the scheduler; do
not change current interfaces" — the ELSC patch replaces the bodies of
``schedule()`` and the four run-queue manipulation functions
(``add_to_runqueue``, ``del_from_runqueue``, ``move_first_runqueue``,
``move_last_runqueue``) and nothing else.  This module pins down exactly
that interface so the machine is scheduler-agnostic and alternative
designs (heap, multi-queue, O(1)) plug in the same way.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from .stats import SchedStats

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cost_model import CostModel
    from ..kernel.cpu import CPU
    from ..kernel.machine import Machine
    from ..kernel.task import Task

__all__ = ["Scheduler", "SchedDecision"]


@dataclass
class SchedDecision:
    """Outcome of one ``schedule()`` invocation.

    ``next_task is None`` means "run the idle task".  ``cost`` is the
    cycle charge for the decision itself (the machine adds lock and
    context-switch charges on top).

    ``eval_cycles`` and ``recalc_cycles`` split ``cost`` for the
    profiler: cycles spent evaluating goodness/utility and cycles spent
    in whole-system counter recalculation (including any structure
    rebuild it forces).  The remainder, ``cost - eval_cycles -
    recalc_cycles``, is the ``pick`` phase.  The split cannot be
    recovered after the fact (recalculation cost depends on the live
    task count at the moment it ran), so schedulers report it here.
    """

    next_task: Optional["Task"]
    cost: int
    examined: int = 0
    recalcs: int = 0
    eval_cycles: int = 0
    recalc_cycles: int = 0


class Scheduler(abc.ABC):
    """Pluggable scheduling policy over the machine's run queue."""

    #: Short identifier used in benches and /proc output ("reg", "elsc", …).
    name: str = "abstract"

    #: Whether every schedule()/wakeup serialises on the single global
    #: runqueue lock (true for the 2.3.99 designs the paper studies).
    #: Per-CPU-queue designs (multiqueue, O(1)) set this False and the
    #: machine charges only uncontended lock costs.
    uses_global_lock: bool = True

    def __init__(self) -> None:
        self.stats = SchedStats()
        self.machine: Optional["Machine"] = None

    # -- lifecycle -----------------------------------------------------------

    def bind(self, machine: "Machine") -> None:
        """Attach to a machine; called once before the simulation starts."""
        self.machine = machine
        self.reset()

    def reset(self) -> None:
        """Clear run-queue structures and statistics."""
        self.stats = SchedStats()

    # -- convenience accessors ------------------------------------------------

    @property
    def cost(self) -> "CostModel":
        assert self.machine is not None, "scheduler not bound to a machine"
        return self.machine.cost

    @property
    def smp(self) -> bool:
        assert self.machine is not None, "scheduler not bound to a machine"
        return self.machine.smp

    @property
    def nr_cpus(self) -> int:
        assert self.machine is not None, "scheduler not bound to a machine"
        return len(self.machine.cpus)

    def all_tasks(self) -> Iterable["Task"]:
        """``for_each_task``: every live task in the system."""
        assert self.machine is not None, "scheduler not bound to a machine"
        return self.machine.live_tasks()

    # -- the kernel interface (paper section 5.1) ------------------------------

    @abc.abstractmethod
    def add_to_runqueue(self, task: "Task") -> int:
        """Make ``task`` selectable; returns the cycle cost of the insert.

        Called on wakeup and when a new task starts.  The cost is returned
        (not self-charged) because it lands on the *waking* context's
        timeline, which the machine owns.
        """

    @abc.abstractmethod
    def del_from_runqueue(self, task: "Task") -> int:
        """Remove ``task`` from the run queue; returns the cycle cost."""

    @abc.abstractmethod
    def move_first_runqueue(self, task: "Task") -> None:
        """Bias ``task`` to win goodness() ties (front of its list)."""

    @abc.abstractmethod
    def move_last_runqueue(self, task: "Task") -> None:
        """Bias ``task`` to lose goodness() ties (back of its list)."""

    @abc.abstractmethod
    def schedule(self, prev: "Task", cpu: "CPU") -> SchedDecision:
        """Pick the task to succeed ``prev`` on ``cpu``.

        Contract (mirroring the kernel):

        * ``prev.has_cpu`` is still True on entry; implementations must
          not select any *other* task whose ``has_cpu`` is set.
        * If ``prev`` is no longer runnable it must leave the run queue.
        * A pending SCHED_YIELD on ``prev`` must be honoured (goodness 0 /
          candidate of last resort) and cleared.
        * Implementations update ``self.stats`` themselves.
        """

    # -- introspection ----------------------------------------------------------

    @abc.abstractmethod
    def runqueue_len(self) -> int:
        """Number of tasks currently considered on the run queue."""

    @abc.abstractmethod
    def runqueue_tasks(self) -> list["Task"]:
        """Snapshot of queued tasks (order meaningful per design); for tests."""

    # -- shared helpers ---------------------------------------------------------

    def recalculate_counters(self) -> int:
        """The recalculation loop: ``counter = counter//2 + priority``.

        Runs over **every task in the system**, runnable or not (paper
        section 3.3.2), and returns its cycle cost.  Subclasses may
        override to add structure maintenance (ELSC flips top/next_top).
        """
        count = 0
        for task in self.all_tasks():
            task.counter = (task.counter >> 1) + task.priority
            count += 1
        self.stats.recalc_entries += 1
        machine = self.machine
        # getattr: bound hosts range from the full Machine to the serve
        # executor's duck-typed shim to bare test fakes.
        probes = getattr(machine, "probes", None)
        if probes is not None and probes.sched:
            from ..obs.probe import RecalcEvent

            probes.emit_sched(RecalcEvent(machine.clock.now, count))
        return self.cost.recalc_cost(count)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} qlen={self.runqueue_len()}>"
