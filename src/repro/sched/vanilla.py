"""The stock Linux 2.3.99-pre4 scheduler (the paper's baseline, "reg").

A faithful re-implementation of the behaviour described in the paper's
section 3 (and the corresponding kernel source):

* the run queue is a single circular doubly-linked list, unsorted; newly
  woken tasks go to the front;
* ``schedule()`` walks the **whole** list evaluating ``goodness()`` for
  every runnable task not currently executing on another CPU, keeping
  the first-seen maximum (front-of-list wins ties);
* the previous task is the initial candidate; a pending SCHED_YIELD
  makes its goodness zero for this pass (and the bit is consumed);
* if the best goodness is exactly zero — at least one runnable task
  exists but every quantum is exhausted (or the lone candidate just
  yielded) — the scheduler **recalculates the counter of every task in
  the system** (``counter = counter//2 + priority``) and rescans;
* an exhausted SCHED_RR previous task is given a fresh quantum and moved
  to the back of the queue before the scan;
* running tasks *stay on the run queue* (``has_cpu`` guards the scan).

Costs are charged per the machine's cost model: a goodness evaluation
per examined task, plus the whole-system recalculation loops.  This is
the O(n)-per-entry, redundant-recalculation design the ELSC scheduler
replaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.listops import ListHead
from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .goodness import goodness

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["VanillaScheduler"]

#: Hard cap on recalculate-and-rescan rounds per schedule() call.  The
#: real kernel needs no such guard (each recalculation strictly raises
#: some counter); this exists to turn a simulator bug into a loud error
#: instead of a hang.
_MAX_REPEATS = 64


class VanillaScheduler(Scheduler):
    """The current (2.3.99-pre4) Linux scheduler — Figure 1a's run queue."""

    name = "reg"

    def __init__(self) -> None:
        super().__init__()
        self._head = ListHead()
        self._len = 0

    def reset(self) -> None:
        super().reset()
        self._head = ListHead()
        self._len = 0

    # -- run-queue manipulation (paper section 3.2) ---------------------------

    def add_to_runqueue(self, task: Task) -> int:
        """Insert at the *front* of the queue (newly woken tasks lead)."""
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        task.run_list.init()
        task.run_list.add(self._head)
        self._len += 1
        self.stats.enqueues += 1
        return self.cost.list_op

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        task.run_list.del_()
        task.run_list.next = None
        task.run_list.prev = None
        self._len -= 1
        self.stats.dequeues += 1
        return self.cost.list_op

    def move_first_runqueue(self, task: Task) -> None:
        if task.in_a_list():
            task.run_list.move(self._head)

    def move_last_runqueue(self, task: Task) -> None:
        if task.in_a_list():
            task.run_list.move_tail(self._head)

    # -- schedule() (paper section 3.3.2) ---------------------------------------

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        self.stats.runqueue_len_sum += self._len
        idle = cpu.idle_task
        cost = 0
        examined_total = 0
        recalcs = 0
        recalc_cycles = 0

        # Exhausted round-robin real-time tasks get a fresh quantum and go
        # to the back of the line before the scan.
        if (
            prev is not idle
            and prev.policy is SchedPolicy.SCHED_RR
            and prev.counter == 0
            and prev.is_runnable()
        ):
            prev.counter = prev.priority
            self.move_last_runqueue(prev)

        # A previous task that stopped being runnable leaves the queue.
        if prev is not idle and not prev.is_runnable():
            cost += self.del_from_runqueue(prev)

        prev_eligible = prev is not idle and prev.is_runnable()

        for _round in range(_MAX_REPEATS):
            c = -1000
            next_task: Optional[Task] = None
            examined = 0
            if prev_eligible:
                # prev_goodness: a pending yield reads as zero and the bit
                # is consumed, so the post-recalculation rescan sees the
                # task's true goodness.
                if prev.yield_pending:
                    prev.yield_pending = False
                    c = 0
                else:
                    c = goodness(prev, cpu.cpu_id, prev.mm)
                next_task = prev
                examined += 1
            # The scan is the hot path of the whole simulation (it runs
            # once per schedule() entry over every queued task), so
            # goodness() is inlined here; test_goodness_inline_matches
            # pins the two implementations together.
            head = self._head
            this_cpu = cpu.cpu_id
            this_mm = prev.mm
            node = head.next
            while node is not head:
                task = node.owner
                node = node.next
                if task.has_cpu:
                    continue  # running on some processor (prev included)
                examined += 1
                if task.policy is SchedPolicy.SCHED_OTHER:
                    counter = task.counter
                    if counter == 0:
                        weight = 0
                    else:
                        weight = counter + task.priority
                        if task.mm is this_mm and this_mm is not None:
                            weight += 1
                        if task.processor == this_cpu:
                            weight += 15
                else:
                    weight = 1000 + task.rt_priority
                if weight > c:
                    c = weight
                    next_task = task
            examined_total += examined
            if c != 0:
                break
            # Every candidate's quantum is spent: recalculate the counter
            # of every task in the system and search again.
            recalc_charge = self.recalculate_counters()
            cost += recalc_charge
            recalc_cycles += recalc_charge
            recalcs += 1
        else:
            raise RuntimeError("vanilla scheduler failed to converge")

        cost += self.cost.vanilla_schedule_cost(examined_total)
        self.stats.tasks_examined += examined_total
        self.stats.scheduler_cycles += cost
        return SchedDecision(
            next_task=next_task,
            cost=cost,
            examined=examined_total,
            recalcs=recalcs,
            eval_cycles=self.cost.goodness_eval * examined_total,
            recalc_cycles=recalc_cycles,
        )

    # -- introspection -------------------------------------------------------------

    def runqueue_len(self) -> int:
        return self._len

    def runqueue_tasks(self) -> list[Task]:
        return [node.owner for node in self._head]
