"""The stock Linux 2.3.99-pre4 scheduler (the paper's baseline, "reg").

A faithful re-implementation of the behaviour described in the paper's
section 3 (and the corresponding kernel source):

* the run queue is a single circular queue, unsorted; newly woken tasks
  go to the front;
* ``schedule()`` walks the **whole** queue evaluating ``goodness()`` for
  every runnable task not currently executing on another CPU, keeping
  the first-seen maximum (front-of-queue wins ties);
* the previous task is the initial candidate; a pending SCHED_YIELD
  makes its goodness zero for this pass (and the bit is consumed);
* if the best goodness is exactly zero — at least one runnable task
  exists but every quantum is exhausted (or the lone candidate just
  yielded) — the scheduler **recalculates the counter of every task in
  the system** (``counter = counter//2 + priority``) and rescans;
* an exhausted SCHED_RR previous task is given a fresh quantum and moved
  to the back of the queue before the scan;
* running tasks *stay on the run queue* (``has_cpu`` guards the scan).

Costs are charged per the machine's cost model: a goodness evaluation
per examined task, plus the whole-system recalculation loops.  This is
the O(n)-per-entry, redundant-recalculation design the ELSC scheduler
replaces.

Two queue layouts implement the same semantics (``impl=`` selects one;
``tests/bench/test_runqueue_identity.py`` pins them bit-identical):

``array`` (default)
    a contiguous Python list of task references with the queue *front
    at the end*, so the front-insert wakeup path is an O(1) C-level
    ``append`` and the scan is a C-level ``reversed()`` iteration over
    an object array — no pointer chasing through per-task
    ``ListHead`` nodes.  (A mirrored int-array/freelist layout was
    measured *slower* under CPython — see docs/performance.md — because
    index indirection re-introduces a Python-level load per element;
    the contiguous object array is what actually wins.)  The
    ``run_list`` sentinel pointers are still maintained so the kernel's
    ``on_runqueue()``/``in_a_list()`` conventions hold unchanged.

    The array scan additionally reads a **cached goodness weight**
    (``task.rq_weight``) instead of recomputing
    ``counter + priority + bonuses`` from five task fields per element.
    The cache is sound because a *queued, non-running* task's
    scheduling parameters cannot change: ticks only decrement the
    counter of a task that is some CPU's ``current`` (skipped by the
    scan via ``has_cpu``, refreshed when it next appears as ``prev``),
    recalculation rewrites every counter (refreshed in the
    :meth:`recalculate_counters` override), and the parameter syscalls
    requeue through ``del``/``add`` (refreshed on insert).  Encoding::

        0                      counter == 0 (quantum exhausted)
        > 0                    counter + priority [+ 15 on a 1-CPU
                               machine when processor == 0]
        -(1000 + rt_priority)  real-time task (negated so the zero /
                               positive tests above stay single-branch)

    On a single-CPU machine the querying CPU is always 0, so the
    processor-affinity bonus folds into the cache and the hot loop is
    three attribute loads per element (``has_cpu``, ``rq_weight``,
    ``mm``).

    On SMP the same fold applies **per CPU** (``smp_fold=True``, the
    default): the queue keeps one parallel weight array per CPU, with
    the +15 affinity bonus pre-added in the row of the task's
    ``processor``, so the scan for CPU ``c`` reads ``zip(reversed(q),
    reversed(w[c]))`` and the per-element ``task.processor == this_cpu``
    re-test disappears from the hot loop (the ROADMAP hot-path
    follow-on; the ``smp-weights`` BenchPair pins the win and
    ``smp_fold=False`` keeps the dynamic re-test alive as its
    before-side).  Soundness is the same argument as ``rq_weight``:
    a queued, non-running task's ``processor`` (and counter) cannot
    change — it moves only when the task is dispatched, at which point
    ``has_cpu`` hides it from every scan until it reappears as
    ``prev``, whose row is refreshed at schedule() entry.

``list``
    the historical circular doubly-linked ``ListHead`` walk computing
    goodness from the live task fields each scan, kept as the
    before-side of the BENCH before/after pair and as a behavioural
    cross-check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.listops import ListHead
from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .goodness import goodness
from .registry import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["VanillaScheduler"]

#: Hard cap on recalculate-and-rescan rounds per schedule() call.  The
#: real kernel needs no such guard (each recalculation strictly raises
#: some counter); this exists to turn a simulator bug into a loud error
#: instead of a hang.
_MAX_REPEATS = 64


@register_scheduler(
    "reg",
    aliases=("vanilla", "current"),
    summary="the 2.3.99 global-runqueue goodness scan",
)
class VanillaScheduler(Scheduler):
    """The current (2.3.99-pre4) Linux scheduler — Figure 1a's run queue."""

    name = "reg"

    def __init__(self, impl: str = "array", smp_fold: bool = True) -> None:
        super().__init__()
        if impl not in ("array", "list"):
            raise ValueError(f"impl must be array|list, got {impl!r}")
        self.impl = impl
        self._array = impl == "array"
        #: Whether the SMP scan uses per-CPU pre-folded weight arrays
        #: (False keeps the per-element processor re-test as the bench
        #: baseline).
        self.smp_fold = smp_fold
        #: array impl: queue front at the END (append == front insert).
        self._q: list[Task] = []
        #: list impl: circular doubly-linked queue head.
        self._head = ListHead()
        self._len = 0
        #: True once bound to a 1-CPU machine: the +15 affinity bonus is
        #: then folded into ``rq_weight`` (the querying CPU is always 0).
        self._fold_proc = False
        #: True once bound to an SMP machine with ``smp_fold``: the
        #: bonus is folded per CPU into the :attr:`_w` rows instead.
        self._smp_fold = False
        #: smp_fold: one weight array per CPU, parallel to ``_q``.
        self._w: list[list[int]] = []

    def reset(self) -> None:
        super().reset()
        self._q = []
        self._head = ListHead()
        self._len = 0
        machine = self.machine
        ncpus = 1 if machine is None else len(machine.cpus)
        self._fold_proc = machine is not None and ncpus == 1
        self._smp_fold = self._array and self.smp_fold and ncpus > 1
        self._w = [[] for _ in range(ncpus)] if self._smp_fold else []

    def _refresh_weight(self, task: Task) -> None:
        """Recompute ``task.rq_weight`` from its live scheduling fields."""
        if task.policy is SchedPolicy.SCHED_OTHER:
            counter = task.counter
            if counter:
                weight = counter + task.priority
                if self._fold_proc and task.processor == 0:
                    weight += 15
                task.rq_weight = weight
            else:
                task.rq_weight = 0
        else:
            task.rq_weight = -1000 - task.rt_priority

    def _refresh_row(self, task: Task, i: int) -> None:
        """smp_fold: recompute ``task``'s per-CPU folded weights at
        queue index ``i`` (affinity bonus pre-added in its CPU's row)."""
        if task.policy is SchedPolicy.SCHED_OTHER:
            counter = task.counter
            if counter:
                base = counter + task.priority
                proc = task.processor
                for c, wc in enumerate(self._w):
                    wc[i] = base + 15 if c == proc else base
            else:
                for wc in self._w:
                    wc[i] = 0
        else:
            weight = -1000 - task.rt_priority
            for wc in self._w:
                wc[i] = weight

    # -- run-queue manipulation (paper section 3.2) ---------------------------

    def add_to_runqueue(self, task: Task) -> int:
        """Insert at the *front* of the queue (newly woken tasks lead)."""
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        if self._array:
            self._refresh_weight(task)
            self._q.append(task)
            if self._smp_fold:
                for wc in self._w:
                    wc.append(0)
                self._refresh_row(task, len(self._q) - 1)
            # Self-loop sentinel: "on the run queue, in a list" for the
            # kernel's pointer conventions, without a linked structure.
            node = task.run_list
            node.next = node
            node.prev = node
        else:
            task.run_list.init()
            task.run_list.add(self._head)
        self._len += 1
        self.stats.enqueues += 1
        return self.cost.list_op

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        if self._array:
            if self._smp_fold:
                i = self._q.index(task)
                del self._q[i]
                for wc in self._w:
                    del wc[i]
            else:
                self._q.remove(task)
        else:
            task.run_list.del_()
        task.run_list.next = None
        task.run_list.prev = None
        self._len -= 1
        self.stats.dequeues += 1
        return self.cost.list_op

    def move_first_runqueue(self, task: Task) -> None:
        if not task.in_a_list():
            return
        if self._array:
            q = self._q
            if self._smp_fold:
                i = q.index(task)
                q.append(q.pop(i))
                for wc in self._w:
                    wc.append(wc.pop(i))
            else:
                q.remove(task)
                q.append(task)
        else:
            task.run_list.move(self._head)

    def move_last_runqueue(self, task: Task) -> None:
        if not task.in_a_list():
            return
        if self._array:
            q = self._q
            if self._smp_fold:
                i = q.index(task)
                q.insert(0, q.pop(i))
                for wc in self._w:
                    wc.insert(0, wc.pop(i))
            else:
                q.remove(task)
                q.insert(0, task)
        else:
            task.run_list.move_tail(self._head)

    # -- schedule() (paper section 3.3.2) -------------------------------------

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        self.stats.runqueue_len_sum += self._len
        idle = cpu.idle_task
        cost = 0
        examined_total = 0
        recalcs = 0
        recalc_cycles = 0

        # Exhausted round-robin real-time tasks get a fresh quantum and go
        # to the back of the line before the scan.
        if (
            prev is not idle
            and prev.policy is SchedPolicy.SCHED_RR
            and prev.counter == 0
            and prev.is_runnable()
        ):
            prev.counter = prev.priority
            self.move_last_runqueue(prev)

        # A previous task that stopped being runnable leaves the queue.
        if prev is not idle and not prev.is_runnable():
            cost += self.del_from_runqueue(prev)

        prev_eligible = prev is not idle and prev.is_runnable()
        array = self._array
        if array and prev is not idle and prev.on_runqueue():
            # prev's counter ticked down (and its processor moved) while
            # it ran; this entry is the first scan that can see it as a
            # non-running task again, so bring its cached weight current.
            self._refresh_weight(prev)
            if self._smp_fold:
                self._refresh_row(prev, self._q.index(prev))
        other = SchedPolicy.SCHED_OTHER

        for _round in range(_MAX_REPEATS):
            c = -1000
            next_task: Optional[Task] = None
            examined = 0
            if prev_eligible:
                # prev_goodness: a pending yield reads as zero and the bit
                # is consumed, so the post-recalculation rescan sees the
                # task's true goodness.
                if prev.yield_pending:
                    prev.yield_pending = False
                    c = 0
                else:
                    c = goodness(prev, cpu.cpu_id, prev.mm)
                next_task = prev
                examined += 1
            # The scan is the hot path of the whole simulation (it runs
            # once per schedule() entry over every queued task), so
            # goodness() is inlined here; test_goodness_inline_matches
            # pins the two implementations together.
            this_cpu = cpu.cpu_id
            this_mm = prev.mm
            if array:
                # Front-to-back == reversed(contiguous array).  Several
                # loop bodies instead of one so the per-element work is
                # exactly the loads the variant needs: rq_weight already
                # encodes counter/priority/policy (and, with
                # _fold_proc, the affinity bonus) — see module docstring.
                q = self._q
                if self._smp_fold:
                    # SMP with per-CPU pre-folded weights: the affinity
                    # bonus lives in this CPU's row, so the loop never
                    # touches task.processor (or counter/priority).
                    wq = self._w[this_cpu]
                    if this_mm is None:
                        for task, weight in zip(reversed(q), reversed(wq)):
                            if task.has_cpu:
                                continue
                            examined += 1
                            if weight < 0:
                                weight = -weight
                            if weight > c:
                                c = weight
                                next_task = task
                    else:
                        for task, weight in zip(reversed(q), reversed(wq)):
                            if task.has_cpu:
                                continue
                            examined += 1
                            if weight > 0:
                                if task.mm is this_mm:
                                    weight += 1
                            elif weight < 0:
                                weight = -weight
                            if weight > c:
                                c = weight
                                next_task = task
                elif not self._fold_proc:
                    # SMP: the querying CPU varies, keep the processor
                    # test dynamic.
                    for task in reversed(q):
                        if task.has_cpu:
                            continue  # running somewhere (prev included)
                        examined += 1
                        weight = task.rq_weight
                        if weight > 0:
                            if task.mm is this_mm and this_mm is not None:
                                weight += 1
                            if task.processor == this_cpu:
                                weight += 15
                        elif weight < 0:
                            weight = -weight  # real-time: 1000 + rt_priority
                        if weight > c:
                            c = weight
                            next_task = task
                elif this_mm is None:
                    for task in reversed(q):
                        if task.has_cpu:
                            continue
                        examined += 1
                        weight = task.rq_weight
                        if weight < 0:
                            weight = -weight
                        if weight > c:
                            c = weight
                            next_task = task
                else:
                    for task in reversed(q):
                        if task.has_cpu:
                            continue
                        examined += 1
                        weight = task.rq_weight
                        if weight > 0:
                            if task.mm is this_mm:
                                weight += 1
                        elif weight < 0:
                            weight = -weight
                        if weight > c:
                            c = weight
                            next_task = task
            else:
                head = self._head
                node = head.next
                while node is not head:
                    task = node.owner
                    node = node.next
                    if task.has_cpu:
                        continue
                    examined += 1
                    if task.policy is other:
                        counter = task.counter
                        if counter == 0:
                            weight = 0
                        else:
                            weight = counter + task.priority
                            if task.mm is this_mm and this_mm is not None:
                                weight += 1
                            if task.processor == this_cpu:
                                weight += 15
                    else:
                        weight = 1000 + task.rt_priority
                    if weight > c:
                        c = weight
                        next_task = task
            examined_total += examined
            if c != 0:
                break
            # Every candidate's quantum is spent: recalculate the counter
            # of every task in the system and search again.
            recalc_charge = self.recalculate_counters()
            cost += recalc_charge
            recalc_cycles += recalc_charge
            recalcs += 1
        else:
            raise RuntimeError("vanilla scheduler failed to converge")

        cost += self.cost.vanilla_schedule_cost(examined_total)
        self.stats.tasks_examined += examined_total
        self.stats.scheduler_cycles += cost
        return SchedDecision(
            next_task=next_task,
            cost=cost,
            examined=examined_total,
            recalcs=recalcs,
            eval_cycles=self.cost.goodness_eval * examined_total,
            recalc_cycles=recalc_cycles,
        )

    def recalculate_counters(self) -> int:
        """Recalculate, then bring every queued task's cached weight current.

        The refresh is simulator bookkeeping, not simulated work: the
        cycle charge is the inherited recalc cost, identical for both
        queue layouts (the bit-identity suites depend on that).
        """
        charge = super().recalculate_counters()
        if self._array:
            refresh = self._refresh_weight
            for task in self._q:
                refresh(task)
            if self._smp_fold:
                refresh_row = self._refresh_row
                for i, task in enumerate(self._q):
                    refresh_row(task, i)
        return charge

    # -- introspection --------------------------------------------------------

    def runqueue_len(self) -> int:
        return self._len

    def runqueue_tasks(self) -> list[Task]:
        if self._array:
            return list(reversed(self._q))
        return [node.owner for node in self._head]
