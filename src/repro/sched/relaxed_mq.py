"""A relaxed concurrent MultiQueue scheduler.

"Multi-Queues Can Be State-of-the-Art Priority Schedulers" (PAPERS.md)
shows that a *c-relaxed* priority queue — many small queues, insert
into one at random, delete-min by probing a constant number of queues
and taking the better top — scales where a strict shared heap
serialises, at the cost of occasionally running a task that is merely
*near*-best.  This module ports that design onto the 2.3.99 task model:

* ``2 * nCPU`` lanes, each a FIFO list of runnable tasks;
* inserts round-robin across lanes (the deterministic stand-in for the
  paper's uniformly-random lane choice — randomness would break the
  bit-identity contracts every scheduler here is held to);
* a pick probes two lanes from a rotating cursor and takes the better
  top by the heap scheduler's key (realtime band above the
  ``counter + priority`` band), falling back to a bounded scan of the
  remaining lanes so a pick never reports a false idle;
* quantum bookkeeping is O(1)-style — counters refill from ``priority``
  on wakeup and on expiry — so there is no recalculation loop.

This is deliberately distinct from the existing ``mq`` policy: ``mq``
gives each CPU *its own* queue with work stealing (locality first),
while ``relaxed_mq`` decouples lanes from CPUs entirely and relaxes
*which* of the best tasks a pick returns (contention first).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .registry import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["RelaxedMQScheduler"]

#: Key bands, mirroring the heap scheduler's ordering.
_RT_BASE = 1_000_000
_ELIGIBLE_BASE = 10_000


def _key(task: Task) -> int:
    """Selection key: bigger is better."""
    if task.is_realtime():
        return _RT_BASE + task.rt_priority
    return _ELIGIBLE_BASE + task.counter + task.priority


@register_scheduler(
    "relaxed_mq",
    aliases=("rmq",),
    summary="c-relaxed MultiQueue: 2-lane probe over 2·nCPU lanes",
)
class RelaxedMQScheduler(Scheduler):
    """Relaxed concurrent MultiQueue (probe-two over 2·nCPU lanes)."""

    name = "relaxed_mq"
    uses_global_lock = False
    per_cpu_queues = True

    #: Lanes per CPU (the MultiQueues paper's classic c = 2).
    lanes_per_cpu = 2

    def __init__(self) -> None:
        super().__init__()
        self._lanes: list[list[Task]] = [[], []]
        #: pid -> lane index while resident in a lane.
        self._lane_of: dict[int, int] = {}
        self._insert_cursor = 0
        self._probe_cursor = 0
        self._running_onqueue = 0

    def reset(self) -> None:
        super().reset()
        count = len(self.machine.cpus) if self.machine is not None else 1
        self._lanes = [[] for _ in range(self.lanes_per_cpu * count)]
        self._lane_of = {}
        self._insert_cursor = 0
        self._probe_cursor = 0
        self._running_onqueue = 0

    # -- enqueue plumbing -----------------------------------------------------

    def _enqueue(
        self, task: Task, lane: Optional[int] = None, front: bool = False
    ) -> None:
        if task.on_runqueue() and task.run_list.prev is None:
            self._running_onqueue -= 1
        if lane is None:
            lane = self._insert_cursor
            self._insert_cursor = (self._insert_cursor + 1) % len(self._lanes)
        if front:
            self._lanes[lane].insert(0, task)
        else:
            self._lanes[lane].append(task)
        self._lane_of[task.pid] = lane
        # On-queue marker (kernel convention: live ``next``).
        task.run_list.next = task.run_list
        task.run_list.prev = task.run_list

    # -- run-queue interface --------------------------------------------------

    def add_to_runqueue(self, task: Task) -> int:
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        if task.counter == 0:
            task.counter = task.priority  # fresh timeslice on wakeup
        self._enqueue(task)
        self.stats.enqueues += 1
        return self.cost.list_op + self.cost.elsc_index

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        lane = self._lane_of.pop(task.pid, None)
        if lane is not None:
            self._lanes[lane].remove(task)
        elif task.run_list.prev is None:
            self._running_onqueue -= 1
        task.run_list.next = None
        task.run_list.prev = None
        self.stats.dequeues += 1
        return self.cost.list_op

    def move_first_runqueue(self, task: Task) -> None:
        lane = self._lane_of.get(task.pid)
        if lane is None:
            return
        self._lanes[lane].remove(task)
        self._lanes[lane].insert(0, task)

    def move_last_runqueue(self, task: Task) -> None:
        lane = self._lane_of.get(task.pid)
        if lane is None:
            return
        self._lanes[lane].remove(task)
        self._lanes[lane].append(task)

    # -- the pick -------------------------------------------------------------

    def _lane_top(
        self, lane: int, prev: Task
    ) -> tuple[Optional[Task], int, int]:
        """Best eligible task in ``lane``: (task, key, examined).

        Left-to-right scan with strict improvement, so FIFO order wins
        ties and ``move_first_runqueue`` keeps its bias.
        """
        best: Optional[Task] = None
        best_key = 0
        examined = 0
        for task in self._lanes[lane]:
            examined += 1
            if task.has_cpu and task is not prev:
                continue
            # A pending sched_yield makes prev the candidate of last
            # resort: key 0, so anything else eligible beats it.
            key = 0 if (task is prev and task.yield_pending) else _key(task)
            if best is None or key > best_key:
                best = task
                best_key = key
        return best, best_key, examined

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        idle = cpu.idle_task
        cost_cycles = 0
        examined = 0
        indexed = 0
        prev_yielded = prev is not idle and prev.yield_pending

        if prev is not idle:
            if prev.is_runnable():
                if prev.counter == 0:
                    if prev.policy is SchedPolicy.SCHED_FIFO:
                        self._enqueue(prev, front=True)
                    else:
                        prev.counter = prev.priority
                        self._enqueue(prev)
                elif prev_yielded:
                    self._enqueue(prev)
                else:
                    self._enqueue(prev, front=True)
            elif prev.on_runqueue():
                cost_cycles += self.del_from_runqueue(prev)

        self.stats.runqueue_len_sum += self.runqueue_len()

        nlanes = len(self._lanes)
        start = self._probe_cursor
        self._probe_cursor = (self._probe_cursor + 1) % nlanes

        # The relaxed pick: probe two lanes, take the better top.
        chosen: Optional[Task] = None
        chosen_key = 0
        for step in (0, 1):
            lane = (start + step) % nlanes
            indexed += 1
            top, key, seen = self._lane_top(lane, prev)
            examined += seen
            if top is not None and (chosen is None or key > chosen_key):
                chosen = top
                chosen_key = key
        if chosen is None:
            # Correctness fallback: both probes came up dry (empty
            # lanes or every task running elsewhere) — scan the rest
            # in rotation order so a runnable task is never missed.
            for step in range(2, nlanes):
                lane = (start + step) % nlanes
                indexed += 1
                chosen, _, seen = self._lane_top(lane, prev)
                examined += seen
                if chosen is not None:
                    break

        if chosen is not None:
            lane = self._lane_of.pop(chosen.pid)
            self._lanes[lane].remove(chosen)
            chosen.run_list.next = chosen.run_list
            chosen.run_list.prev = None
            self._running_onqueue += 1
            if prev_yielded and chosen is prev:
                self.stats.yield_reruns += 1
        if prev is not idle and prev.yield_pending:
            prev.yield_pending = False

        cost_cycles += self.cost.elsc_schedule_cost(examined, indexed)
        self.stats.tasks_examined += examined
        self.stats.scheduler_cycles += cost_cycles
        return SchedDecision(
            next_task=chosen,
            cost=cost_cycles,
            examined=examined,
            eval_cycles=self.cost.elsc_examine * examined,
        )

    # -- introspection --------------------------------------------------------

    def runqueue_len(self) -> int:
        return sum(len(lane) for lane in self._lanes) + self._running_onqueue

    def runqueue_tasks(self) -> list[Task]:
        out: list[Task] = []
        for lane in self._lanes:
            out.extend(lane)
        return out

    def per_cpu_queue_lens(self) -> list[int]:
        """One entry per lane."""
        return [len(lane) for lane in self._lanes]
