"""An XNU-Clutch-style hierarchical scheduler.

Darwin's ``sched_clutch`` (osfmk/kern/sched_clutch.c) replaced the flat
global ready queue with a three-level hierarchy: the root picks a *QoS
bucket* (Fixed-priority, Foreground, Default, Utility, Background), the
bucket picks a *thread group* (clutch), and the group picks a thread.
Bucket selection is earliest-deadline-first over per-bucket
worst-case-execution-latency deadlines, with two refinements this module
reproduces:

* **warps** — an interactivity budget letting a higher-QoS bucket jump
  ahead of the EDF winner a bounded number of times, so foreground work
  preempts batch work without starving it;
* **starvation avoidance** — once the EDF winner is overdue past a
  grace window, warping is disabled and the starved bucket runs.

Mapped onto the 2.3.99 task model: real-time tasks form the fixed-pri
bucket; SCHED_OTHER tasks land in a QoS bucket by static ``priority``
band; the thread group is :meth:`Scheduler.task_group` (the shared
``mm``), round-robined inside the bucket with FIFO order inside the
group.  Quantum bookkeeping is O(1)-style — a task's counter is
refilled from its priority on wakeup and on expiry — so there is no
whole-system recalculation loop.

Determinism: the hierarchy's clock is an internal logical counter
(advanced per ``schedule()`` and per ``on_tick``), never the machine's
cycle clock, so the same arrival trace produces the same picks in the
simulator, the serve executor, and the fuzzer's replay hosts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .registry import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["ClutchScheduler"]

#: Bucket indices (lower = higher QoS).
_FIXPRI = 0
_FG = 1
_DEF = 2
_UT = 3
_BG = 4
_N_BUCKETS = 5

_BUCKET_NAMES = ("fixpri", "fg", "def", "ut", "bg")

#: Worst-case execution latency per bucket, in logical scheduler ticks:
#: how long a non-empty bucket may wait before its deadline makes it
#: the EDF winner.  Fixed-priority work bypasses EDF entirely.
_WCEL = (0, 8, 16, 24, 32)

#: Warp budget per bucket: how many times it may jump ahead of the EDF
#: winner before it must wait its turn (restored when it next wins EDF
#: on its own deadline).
_WARP = (0, 4, 2, 1, 0)

#: Starvation grace: once the EDF winner is overdue by more than this
#: many logical ticks, warping is disabled until it has run.
_STARVATION_GRACE = 8


def _bucket_for(task: Task) -> int:
    """QoS bucket index for ``task`` (priority bands over 1..40)."""
    if task.is_realtime():
        return _FIXPRI
    if task.priority >= 30:
        return _FG
    if task.priority >= 20:
        return _DEF
    if task.priority >= 10:
        return _UT
    return _BG


class _Bucket:
    """One QoS level: insertion-ordered thread groups of FIFO tasks."""

    __slots__ = ("index", "groups", "count", "deadline", "warp_left")

    def __init__(self, index: int) -> None:
        self.index = index
        #: group key -> FIFO list of queued tasks.  Insertion order is
        #: the round-robin order; rotation moves a picked group to the
        #: back.
        self.groups: dict = {}
        self.count = 0
        #: EDF deadline in logical ticks; meaningful while count > 0.
        self.deadline = 0
        self.warp_left = _WARP[index]


@register_scheduler(
    "clutch",
    aliases=("sched_clutch",),
    summary="XNU-Clutch-style hierarchy: QoS buckets with EDF warp",
)
class ClutchScheduler(Scheduler):
    """Thread groups under EDF QoS buckets with warps (Darwin's Clutch)."""

    name = "clutch"
    uses_global_lock = True
    hierarchical = True

    def __init__(self) -> None:
        super().__init__()
        self._buckets = [_Bucket(i) for i in range(_N_BUCKETS)]
        #: pid -> (bucket index, group key) while resident in a group.
        self._where: dict = {}
        self._running_onqueue = 0
        #: Logical hierarchy clock: schedule() entries + charged ticks.
        self._now = 0

    def reset(self) -> None:
        super().reset()
        self._buckets = [_Bucket(i) for i in range(_N_BUCKETS)]
        self._where = {}
        self._running_onqueue = 0
        self._now = 0

    # -- lifecycle hooks ------------------------------------------------------

    def on_tick(self, task: Task, cpu_id: int) -> None:
        """Charged quantum ticks advance the hierarchy's EDF clock."""
        self._now += 1

    # -- enqueue plumbing -----------------------------------------------------

    def _enqueue(self, task: Task, front: bool = False) -> None:
        if task.on_runqueue() and task.run_list.prev is None:
            self._running_onqueue -= 1
        bidx = _bucket_for(task)
        bucket = self._buckets[bidx]
        group = self.task_group(task)
        if bucket.count == 0:
            bucket.deadline = self._now + _WCEL[bidx]
        tasks = bucket.groups.get(group)
        if tasks is None:
            tasks = bucket.groups[group] = []
        if front:
            tasks.insert(0, task)
            # Front bias extends to the round-robin order: the group
            # is considered first so prev wins goodness-style ties.
            bucket.groups = {group: bucket.groups.pop(group), **bucket.groups}
        else:
            tasks.append(task)
        bucket.count += 1
        self._where[task.pid] = (bidx, group)
        # On-queue marker (kernel convention: live ``next``).
        task.run_list.next = task.run_list
        task.run_list.prev = task.run_list

    def _remove(self, task: Task) -> None:
        bidx, group = self._where.pop(task.pid)
        bucket = self._buckets[bidx]
        tasks = bucket.groups[group]
        tasks.remove(task)
        if not tasks:
            del bucket.groups[group]
        bucket.count -= 1

    # -- run-queue interface --------------------------------------------------

    def add_to_runqueue(self, task: Task) -> int:
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        if task.counter == 0:
            task.counter = task.priority  # fresh timeslice on wakeup
        self._enqueue(task)
        self.stats.enqueues += 1
        return self.cost.list_op + self.cost.elsc_index

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        if task.pid in self._where:
            self._remove(task)
        elif task.run_list.prev is None:
            self._running_onqueue -= 1
        task.run_list.next = None
        task.run_list.prev = None
        self.stats.dequeues += 1
        return self.cost.list_op

    def move_first_runqueue(self, task: Task) -> None:
        where = self._where.get(task.pid)
        if where is None:
            return
        bidx, group = where
        bucket = self._buckets[bidx]
        tasks = bucket.groups[group]
        tasks.remove(task)
        tasks.insert(0, task)
        bucket.groups = {group: bucket.groups.pop(group), **bucket.groups}

    def move_last_runqueue(self, task: Task) -> None:
        where = self._where.get(task.pid)
        if where is None:
            return
        bidx, group = where
        bucket = self._buckets[bidx]
        tasks = bucket.groups[group]
        tasks.remove(task)
        tasks.append(task)
        bucket.groups[group] = bucket.groups.pop(group)

    # -- the pick -------------------------------------------------------------

    def _bucket_candidate(
        self, bucket: _Bucket, prev: Task
    ) -> tuple[Optional[Task], int]:
        """First eligible task in round-robin group order.

        Returns ``(task, examined)``; skips tasks running on other CPUs
        (``has_cpu`` and not ``prev``).
        """
        examined = 0
        for tasks in bucket.groups.values():
            for task in tasks:
                examined += 1
                if task.has_cpu and task is not prev:
                    continue
                return task, examined
        return None, examined

    def _edf_order(self) -> list[_Bucket]:
        """Non-empty timeshare buckets, earliest deadline first (QoS
        breaks ties)."""
        live = [b for b in self._buckets[1:] if b.count > 0]
        return sorted(live, key=lambda b: (b.deadline, b.index))

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        self._now += 1
        idle = cpu.idle_task
        cost_cycles = 0
        examined = 0
        indexed = 0
        prev_yielded = prev is not idle and prev.yield_pending

        if prev is not idle:
            if prev.is_runnable():
                if prev.counter == 0:
                    if prev.policy is SchedPolicy.SCHED_FIFO:
                        self._enqueue(prev, front=True)
                    else:
                        prev.counter = prev.priority
                        self._enqueue(prev)
                elif prev_yielded:
                    # sched_yield: back of the group *and* the group to
                    # the back of its bucket's round-robin order.
                    self._enqueue(prev)
                    bidx, group = self._where[prev.pid]
                    groups = self._buckets[bidx].groups
                    groups[group] = groups.pop(group)
                else:
                    self._enqueue(prev, front=True)
            elif prev.on_runqueue():
                cost_cycles += self.del_from_runqueue(prev)

        self.stats.runqueue_len_sum += self.runqueue_len()

        chosen: Optional[Task] = None
        chosen_bucket: Optional[_Bucket] = None
        warped = False

        # Level 1: fixed-priority work bypasses EDF outright.
        fixpri = self._buckets[_FIXPRI]
        if fixpri.count > 0:
            indexed += 1
            chosen, seen = self._bucket_candidate(fixpri, prev)
            examined += seen
            if chosen is not None:
                chosen_bucket = fixpri

        if chosen is None:
            order = self._edf_order()
            if order:
                winner = order[0]
                starving = self._now > winner.deadline + _STARVATION_GRACE
                # Warp: the highest-QoS bucket above the EDF winner
                # with budget left may jump ahead — unless the winner
                # is already starved past its grace window.
                warp_bucket: Optional[_Bucket] = None
                if not starving:
                    for b in self._buckets[1 : winner.index]:
                        if b.count > 0 and b.warp_left > 0:
                            warp_bucket = b
                            break
                scan = (
                    [warp_bucket] if warp_bucket is not None else []
                ) + order
                for pos, bucket in enumerate(scan):
                    indexed += 1
                    chosen, seen = self._bucket_candidate(bucket, prev)
                    examined += seen
                    if chosen is not None:
                        chosen_bucket = bucket
                        warped = pos == 0 and warp_bucket is not None
                        break

        if chosen is not None and chosen_bucket is not None:
            group = self._where[chosen.pid][1]
            self._remove(chosen)
            # Round-robin: a group that just ran goes to the back of
            # its bucket so siblings get their turn.
            if group in chosen_bucket.groups:
                chosen_bucket.groups[group] = chosen_bucket.groups.pop(group)
            chosen.run_list.next = chosen.run_list
            chosen.run_list.prev = None
            self._running_onqueue += 1
            if chosen_bucket.index != _FIXPRI:
                if warped:
                    chosen_bucket.warp_left -= 1
                else:
                    # Winning on its own deadline restores the budget.
                    chosen_bucket.warp_left = _WARP[chosen_bucket.index]
                # Selection re-arms the bucket's deadline.
                if chosen_bucket.count > 0:
                    chosen_bucket.deadline = (
                        self._now + _WCEL[chosen_bucket.index]
                    )
            if prev_yielded and chosen is prev:
                self.stats.yield_reruns += 1
        if prev is not idle and prev.yield_pending:
            prev.yield_pending = False

        cost_cycles += self.cost.elsc_schedule_cost(examined, indexed)
        self.stats.tasks_examined += examined
        self.stats.scheduler_cycles += cost_cycles
        return SchedDecision(
            next_task=chosen,
            cost=cost_cycles,
            examined=examined,
            eval_cycles=self.cost.elsc_examine * examined,
        )

    # -- introspection --------------------------------------------------------

    def runqueue_len(self) -> int:
        return sum(b.count for b in self._buckets) + self._running_onqueue

    def runqueue_tasks(self) -> list[Task]:
        out: list[Task] = []
        for bucket in self._buckets:
            for tasks in bucket.groups.values():
                out.extend(tasks)
        return out

    def per_cpu_queue_lens(self) -> list[int]:
        """One entry per QoS bucket (the hierarchy's natural queues)."""
        return [b.count for b in self._buckets]

    def bucket_census(self) -> dict[str, int]:
        """Queued-task count per named bucket, for tests and /proc."""
        return {
            _BUCKET_NAMES[b.index]: b.count for b in self._buckets
        }
