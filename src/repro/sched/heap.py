"""A heap-based scheduler — the paper's first future-work design (§8).

    "…many other possibilities exist, such as sorting tasks by static
    goodness within heaps … One could choose the absolute best task
    available simply by examining the top of each heap."

The run queue is a single binary max-heap keyed by static goodness
(real-time tasks key above every SCHED_OTHER task, ordered by
``rt_priority``).  ``schedule()`` pops the top few entries, evaluates
their *dynamic* bonuses exactly as ELSC does, picks the best, and pushes
the rest back.  Compared with the ELSC table:

* the heap always yields the globally best *static* candidate —
  there is no 4-point quantisation from sharing a list — but inserts
  and removals cost O(log n) instead of O(1);
* zero-counter tasks sink to the bottom naturally (their key is their
  post-recalculation static goodness, negated below eligible keys), so
  the recalculation trigger is "the top of the heap is ineligible".

Entries use the standard lazy-invalidation pattern: removal marks the
entry dead and live membership is tracked per task.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Optional

from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .goodness import dynamic_bonus
from .registry import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["HeapScheduler"]

_MAX_REPEATS = 64

#: Keys at or above this are real-time tasks.
_RT_BASE = 1_000_000
#: Eligible SCHED_OTHER keys start here; exhausted tasks sit below.
_ELIGIBLE_BASE = 10_000


class _Entry:
    __slots__ = ("key", "seq", "task", "dead")

    def __init__(self, key: int, seq: int, task: Task) -> None:
        self.key = key
        self.seq = seq
        self.task = task
        self.dead = False

    def __lt__(self, other: "_Entry") -> bool:
        # heapq is a min-heap: invert key; tie-break LIFO (front-of-queue
        # bias for newly woken tasks, like the stock scheduler).
        if self.key != other.key:
            return self.key > other.key
        return self.seq > other.seq


@register_scheduler(
    "heap",
    summary="global priority heap with lazy deletion",
)
class HeapScheduler(Scheduler):
    """Global static-goodness heap with lazy-deleted entries."""

    name = "heap"

    def __init__(self, search_limit: Optional[int] = None) -> None:
        super().__init__()
        self._search_limit_override = search_limit
        self._heap: list[_Entry] = []
        self._entries: dict[int, _Entry] = {}  # pid -> live entry
        self._seq = itertools.count()
        self._running_onqueue = 0

    def reset(self) -> None:
        super().reset()
        self._heap = []
        self._entries = {}
        self._seq = itertools.count()
        self._running_onqueue = 0

    @property
    def search_limit(self) -> int:
        if self._search_limit_override is not None:
            return self._search_limit_override
        return self.nr_cpus // 2 + 5

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def key_for(task: Task) -> int:
        """Heap key: RT above all, eligible next, exhausted at the bottom."""
        if task.is_realtime():
            return _RT_BASE + task.rt_priority
        if task.counter > 0:
            return _ELIGIBLE_BASE + task.counter + task.priority
        # Exhausted: order by predicted post-recalculation goodness so the
        # rebuild after a recalculation is already roughly in order.
        predicted = (task.counter >> 1) + task.priority
        return predicted + task.priority

    @staticmethod
    def _eligible_key(key: int) -> bool:
        return key >= _ELIGIBLE_BASE

    # -- run-queue interface ------------------------------------------------------

    def _push(self, task: Task) -> None:
        if task.on_runqueue() and task.run_list.prev is None:
            self._running_onqueue -= 1
        entry = _Entry(self.key_for(task), next(self._seq), task)
        self._entries[task.pid] = entry
        heapq.heappush(self._heap, entry)
        task.run_list.next = task.run_list  # "on the run queue" marker
        task.run_list.prev = task.run_list

    def add_to_runqueue(self, task: Task) -> int:
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        self._push(task)
        self.stats.enqueues += 1
        # O(log n) sift plus the plain insert both designs pay.
        return self.cost.list_op + self.cost.elsc_index

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        entry = self._entries.pop(task.pid, None)
        if entry is not None:
            entry.dead = True
        elif task.run_list.prev is None:
            self._running_onqueue -= 1
        task.run_list.next = None
        task.run_list.prev = None
        self.stats.dequeues += 1
        return self.cost.list_op

    # Tie biasing: reissue the entry with a fresh sequence number.
    def move_first_runqueue(self, task: Task) -> None:
        entry = self._entries.get(task.pid)
        if entry is not None:
            entry.dead = True
            self._push(task)

    def move_last_runqueue(self, task: Task) -> None:
        entry = self._entries.get(task.pid)
        if entry is None:
            return
        entry.dead = True
        fresh = _Entry(self.key_for(task), -next(self._seq), task)
        self._entries[task.pid] = fresh
        heapq.heappush(self._heap, fresh)

    # -- schedule -----------------------------------------------------------------

    def _top_live(self) -> Optional[_Entry]:
        while self._heap and self._heap[0].dead:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        idle = cpu.idle_task
        cost_cycles = 0
        examined = 0
        indexed = 0
        recalcs = 0
        recalc_cycles = 0
        prev_yielded = prev is not idle and prev.yield_pending

        if prev is not idle:
            if prev.is_runnable():
                if prev.policy is SchedPolicy.SCHED_RR and prev.counter == 0:
                    prev.counter = prev.priority
                if prev.pid not in self._entries:
                    # Back into the heap — prev may carry the "on the run
                    # queue while running" marker, which _push clears.
                    self._push(prev)
                    indexed += 1
            elif prev.on_runqueue():
                cost_cycles += self.del_from_runqueue(prev)

        self.stats.runqueue_len_sum += self.runqueue_len()

        chosen: Optional[Task] = None
        for _round in range(_MAX_REPEATS):
            top = self._top_live()
            if top is None:
                break  # empty: idle
            if not self._eligible_key(top.key):
                recalc_charge = self.recalculate_counters()
                recalcs += 1
                # Keys changed: rebuild the heap from live entries.
                live = [e for e in self._heap if not e.dead]
                for entry in live:
                    entry.key = self.key_for(entry.task)
                heapq.heapify(live)
                self._heap = live
                # The rebuild is part of the recalculation's price.
                recalc_charge += self.cost.elsc_index * max(1, len(live))
                cost_cycles += recalc_charge
                recalc_cycles += recalc_charge
                continue
            chosen, exam, popped = self._pick(top, prev, cpu)
            examined += exam
            indexed += popped  # re-pushed runners-up
            break
        else:  # pragma: no cover
            raise RuntimeError("heap scheduler failed to converge")

        if chosen is not None:
            entry = self._entries.pop(chosen.pid)
            entry.dead = True
            chosen.run_list.next = chosen.run_list
            chosen.run_list.prev = None  # running, off the heap
            self._running_onqueue += 1
            if prev_yielded and chosen is prev:
                self.stats.yield_reruns += 1
        if prev is not idle and prev.yield_pending:
            prev.yield_pending = False

        cost_cycles += self.cost.elsc_schedule_cost(examined, indexed)
        self.stats.tasks_examined += examined
        self.stats.scheduler_cycles += cost_cycles
        return SchedDecision(
            next_task=chosen,
            cost=cost_cycles,
            examined=examined,
            recalcs=recalcs,
            eval_cycles=self.cost.elsc_examine * examined,
            recalc_cycles=recalc_cycles,
        )

    def _pick(
        self, top: _Entry, prev: Task, cpu: "CPU"
    ) -> tuple[Optional[Task], int, int]:
        """Pop up to search_limit candidates, keep the best dynamic score."""
        limit = self.search_limit
        popped: list[_Entry] = []
        best: Optional[Task] = None
        best_utility = -1
        yielded_fallback: Optional[Task] = None
        examined = 0
        while examined < limit:
            entry = self._top_live()
            if entry is None or not self._eligible_key(entry.key):
                break
            heapq.heappop(self._heap)
            popped.append(entry)
            task = entry.task
            examined += 1
            if task.has_cpu and task is not prev:
                continue
            if task.is_realtime():
                best = task  # heap order already ranks rt_priority
                break
            if task.yield_pending:
                if yielded_fallback is None:
                    yielded_fallback = task
                continue
            utility = task.static_goodness() + dynamic_bonus(
                task, cpu.cpu_id, prev.mm
            )
            if utility > best_utility:
                best = task
                best_utility = utility
        chosen = best if best is not None else yielded_fallback
        # Push back everything we popped (the chosen one is removed by the
        # caller through its live entry).
        requeued = 0
        for entry in popped:
            if not entry.dead:
                heapq.heappush(self._heap, entry)
                requeued += 1
        return chosen, examined, requeued

    # -- introspection ------------------------------------------------------------

    def runqueue_len(self) -> int:
        return len(self._entries) + self._running_onqueue

    def runqueue_tasks(self) -> list[Task]:
        live = [e for e in self._heap if not e.dead]
        return [e.task for e in sorted(live)]
