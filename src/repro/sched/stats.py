"""Scheduler statistics — the counters behind Figures 2, 5 and 6.

The paper instrumented both schedulers and exported counters through the
proc file system ("we also collected statistics about what the scheduler
was doing and exposed them through the proc file system", section 6).
This module is that instrumentation: one :class:`SchedStats` per
scheduler instance, updated on every ``schedule()`` entry, recalculation
loop, and dispatch decision.

Figure mapping
--------------
* Figure 2 — ``recalc_entries`` (recalculate-loop entries)
* Figure 5 — ``cycles_per_schedule()`` and ``examined_per_schedule()``
* Figure 6 — ``schedule_calls`` and ``migrations`` (tasks scheduled on a
  processor other than the one they last ran on)
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SchedStats"]


@dataclass
class SchedStats:
    """Counters one scheduler instance accumulates over a run."""

    #: Entries into schedule() (Figure 6, first chart).
    schedule_calls: int = 0

    #: schedule() entries that selected the idle task.
    idle_schedules: int = 0

    #: Entries into the whole-system counter recalculation loop (Figure 2).
    recalc_entries: int = 0

    #: Total tasks examined across all schedule() calls (Figure 5, right).
    tasks_examined: int = 0

    #: Total cycles charged for scheduler work, excluding lock spin
    #: (Figure 5, left).
    scheduler_cycles: int = 0

    #: Cycles spent spinning on the runqueue lock before schedule() could
    #: begin (SMP builds only).
    lock_spin_cycles: int = 0

    #: Dispatches where the chosen task last ran on a different CPU
    #: (Figure 6, second chart).
    migrations: int = 0

    #: Tick-driven preemptions: schedule() entries forced because the
    #: running task's quantum expired (the PREEMPT trace events).
    preemptions: int = 0

    #: Dispatches where the chosen task received no processor-affinity
    #: bonus (the paper correlates these with the extra schedule() calls
    #: ELSC makes on SMP).
    picks_without_affinity: int = 0

    #: Dispatches where the chosen task shared the previous task's mm.
    picks_same_mm: int = 0

    #: Times a yielding previous task was rerun to dodge a recalculation
    #: (ELSC-only behaviour, section 5.2 last paragraph).
    yield_reruns: int = 0

    #: add_to_runqueue() invocations (wakeups + preempted re-inserts).
    enqueues: int = 0

    #: del_from_runqueue() invocations.
    dequeues: int = 0

    #: Sum of run-queue lengths observed at schedule() entry, for
    #: average-queue-depth reporting.
    runqueue_len_sum: int = 0

    #: Context switches to a different task than the previous one.
    switches: int = 0

    # -- derived -----------------------------------------------------------

    def cycles_per_schedule(self) -> float:
        """Average scheduler cycles per schedule() entry (Figure 5 left)."""
        if self.schedule_calls == 0:
            return 0.0
        return self.scheduler_cycles / self.schedule_calls

    def examined_per_schedule(self) -> float:
        """Average tasks examined per schedule() entry (Figure 5 right)."""
        if self.schedule_calls == 0:
            return 0.0
        return self.tasks_examined / self.schedule_calls

    def avg_runqueue_len(self) -> float:
        if self.schedule_calls == 0:
            return 0.0
        return self.runqueue_len_sum / self.schedule_calls

    def total_scheduler_cycles(self) -> int:
        """Scheduler work plus lock spin — the full cost the system pays."""
        return self.scheduler_cycles + self.lock_spin_cycles

    def merged_with(self, other: "SchedStats") -> "SchedStats":
        """Element-wise sum (for aggregating repeated benchmark runs)."""
        out = SchedStats()
        for f in out.__dataclass_fields__:
            setattr(out, f, getattr(self, f) + getattr(other, f))
        return out

    def snapshot(self) -> dict[str, float]:
        """Plain-dict view (used by the /proc renderer and benches)."""
        data: dict[str, float] = {
            f: getattr(self, f) for f in self.__dataclass_fields__
        }
        data["cycles_per_schedule"] = self.cycles_per_schedule()
        data["examined_per_schedule"] = self.examined_per_schedule()
        data["avg_runqueue_len"] = self.avg_runqueue_len()
        return data
