"""A per-CPU multi-queue scheduler — the paper's second future-work idea (§8).

    "Or perhaps a multi-priority-queue solution would be more beneficial
    to help the scheduler scale to multiple processors well."

Each CPU owns a private ELSC-style table; ``schedule()`` on a CPU only
consults its own table, and wakeups enqueue onto the waked task's
last-run CPU (falling back to the least-loaded).  An idle CPU with an
empty table *steals* from the most loaded one.  Because no structure is
shared, the global runqueue lock disappears (``uses_global_lock`` is
False and the machine charges only uncontended lock costs) — this is the
design direction Linux actually took in 2.4/2.5.

Trade-offs this makes visible in the ablation bench:

* near-zero lock contention at any CPU count;
* weaker global decisions: a CPU can run a mediocre local task while a
  better one waits elsewhere (mitigated, not fixed, by stealing);
* processor affinity is implicit (tasks stay on their home queue), so
  migrations only happen through stealing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.table import ELSCListTable
from ..kernel.task import SchedPolicy, Task
from .base import SchedDecision, Scheduler
from .goodness import dynamic_bonus
from .registry import register_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.cpu import CPU

__all__ = ["MultiQueueScheduler"]

_MAX_REPEATS = 64


@register_scheduler(
    "mq",
    aliases=("multiqueue",),
    summary="lock-per-queue per-CPU runqueues with idle steal",
)
class MultiQueueScheduler(Scheduler):
    """One ELSC table per CPU, idle stealing, no global lock."""

    name = "mq"
    uses_global_lock = False
    per_cpu_queues = True

    def __init__(self, steal: bool = True) -> None:
        super().__init__()
        self.steal = steal
        self._tables: list[ELSCListTable] = []
        self._home: dict[int, int] = {}  # pid -> table index while queued
        self._running_onqueue = 0

    def reset(self) -> None:
        super().reset()
        count = len(self.machine.cpus) if self.machine is not None else 1
        # The linked-list table layout, deliberately: multiqueue
        # recalculates while sibling tables still hold eligible tasks
        # (out of the single-queue contract), and its behaviour is pinned
        # to the historical stale-cursor promotion that layout implements.
        self._tables = [ELSCListTable() for _ in range(count)]
        self._home = {}
        self._running_onqueue = 0

    @property
    def search_limit(self) -> int:
        return self.nr_cpus // 2 + 5

    # -- placement -----------------------------------------------------------------

    def _pick_home(self, task: Task) -> int:
        if 0 <= task.processor < len(self._tables):
            return task.processor
        # Least-loaded placement for never-ran tasks.
        loads = [t.resident for t in self._tables]
        return loads.index(min(loads))

    def _insert(self, task: Task, home: Optional[int] = None, at_tail: bool = False) -> int:
        if task.on_runqueue() and not task.in_a_list():
            self._running_onqueue -= 1
        idx = self._pick_home(task) if home is None else home
        self._tables[idx].insert(task, at_tail=at_tail)
        self._home[task.pid] = idx
        return idx

    # -- run-queue interface ---------------------------------------------------------

    def add_to_runqueue(self, task: Task) -> int:
        if task.on_runqueue():
            raise RuntimeError(f"{task.name} is already on the run queue")
        self._insert(task)
        self.stats.enqueues += 1
        return self.cost.list_op + self.cost.elsc_index

    def del_from_runqueue(self, task: Task) -> int:
        if not task.on_runqueue():
            return 0
        if task.in_a_list():
            home = self._home.pop(task.pid)
            self._tables[home].remove(task)
        else:
            self._running_onqueue -= 1
        task.run_list.next = None
        task.run_list.prev = None
        self.stats.dequeues += 1
        return self.cost.list_op

    def move_first_runqueue(self, task: Task) -> None:
        if task.in_a_list():
            self._tables[self._home[task.pid]].move_first(task)

    def move_last_runqueue(self, task: Task) -> None:
        if task.in_a_list():
            self._tables[self._home[task.pid]].move_last(task)

    # -- schedule ----------------------------------------------------------------------

    def schedule(self, prev: Task, cpu: "CPU") -> SchedDecision:
        self.stats.schedule_calls += 1
        idle = cpu.idle_task
        cost_cycles = 0
        examined = 0
        indexed = 0
        recalcs = 0
        recalc_cycles = 0
        prev_yielded = prev is not idle and prev.yield_pending
        my = cpu.cpu_id if cpu.cpu_id < len(self._tables) else 0

        if prev is not idle:
            if prev.is_runnable():
                at_tail = False
                if prev.policy is SchedPolicy.SCHED_RR and prev.counter == 0:
                    prev.counter = prev.priority
                    at_tail = True
                self._insert(prev, home=my, at_tail=at_tail)
                indexed += 1
            elif prev.on_runqueue():
                cost_cycles += self.del_from_runqueue(prev)

        self.stats.runqueue_len_sum += self.runqueue_len()

        chosen: Optional[Task] = None
        table_idx = my
        for _round in range(_MAX_REPEATS):
            table = self._tables[table_idx]
            if table.top is None:
                if table.next_top is not None:
                    recalc_charge = self._recalculate(table)
                    cost_cycles += recalc_charge
                    recalc_cycles += recalc_charge
                    recalcs += 1
                    continue
                # My queue is empty: steal from the busiest table.
                victim = self._steal_victim(my)
                if victim is None:
                    break  # idle
                table_idx = victim
                continue
            candidate, exam = self._search_table(table, prev, cpu)
            examined += exam
            if candidate is not None:
                chosen = candidate
                break
            break
        else:  # pragma: no cover
            raise RuntimeError("multiqueue scheduler failed to converge")

        if chosen is not None:
            home = self._home.pop(chosen.pid)
            self._tables[home].remove(chosen)
            chosen.run_list.next = chosen.run_list
            chosen.run_list.prev = None
            self._running_onqueue += 1
            if prev_yielded and chosen is prev:
                self.stats.yield_reruns += 1
        if prev is not idle and prev.yield_pending:
            prev.yield_pending = False

        cost_cycles += self.cost.elsc_schedule_cost(examined, indexed)
        self.stats.tasks_examined += examined
        self.stats.scheduler_cycles += cost_cycles
        return SchedDecision(
            next_task=chosen,
            cost=cost_cycles,
            examined=examined,
            recalcs=recalcs,
            eval_cycles=self.cost.elsc_examine * examined,
            recalc_cycles=recalc_cycles,
        )

    def _recalculate(self, table: ELSCListTable) -> int:
        # Counters are a global property; the per-CPU structures each
        # promote their own next_top.
        cost = super().recalculate_counters()
        for t in self._tables:
            t.after_recalculate()
        return cost

    def _steal_victim(self, my: int) -> Optional[int]:
        if not self.steal:
            return None
        best = None
        best_load = 0
        for i, table in enumerate(self._tables):
            if i == my:
                continue
            if table.top is not None and table.resident > best_load:
                best = i
                best_load = table.resident
        return best

    def _search_table(
        self, table: ELSCListTable, prev: Task, cpu: "CPU"
    ) -> tuple[Optional[Task], int]:
        limit = self.search_limit
        idx: Optional[int] = table.top
        examined = 0
        while idx is not None:
            rt_list = idx >= table.other_lists
            best: Optional[Task] = None
            best_utility = -1
            yielded_fallback: Optional[Task] = None
            seen = 0
            for node in table.lists[idx]:
                task: Task = node.owner
                if not rt_list and task.counter == 0:
                    break
                seen += 1
                examined += 1
                if task.has_cpu and task is not prev:
                    if seen >= limit:
                        break
                    continue
                if rt_list:
                    if best is None or task.rt_priority > best.rt_priority:
                        best = task
                elif task.yield_pending:
                    if yielded_fallback is None:
                        yielded_fallback = task
                else:
                    utility = task.static_goodness() + dynamic_bonus(
                        task, cpu.cpu_id, prev.mm
                    )
                    if utility > best_utility:
                        best = task
                        best_utility = utility
                if seen >= limit:
                    break
            if best is not None:
                return best, examined
            if yielded_fallback is not None:
                return yielded_fallback, examined
            idx = table.next_eligible_below(idx)
        return None, examined

    # -- introspection ---------------------------------------------------------------------

    def runqueue_len(self) -> int:
        return sum(t.resident for t in self._tables) + self._running_onqueue

    def runqueue_tasks(self) -> list[Task]:
        out: list[Task] = []
        for table in self._tables:
            out.extend(table.all_resident())
        return out

    def queue_loads(self) -> list[int]:
        """Resident count per CPU table (for balance assertions)."""
        return [t.resident for t in self._tables]
