"""ScenarioSpec: one experiment, fully described, in one loadable value.

A :class:`~repro.harness.spec.RunSpec` names a *cell* — workload,
scheduler, machine, config — but everything else that shapes an
experiment lives in CLI flags: which fault plan, which probes, what
offered-load profile.  A :class:`ScenarioSpec` closes that gap by
composing all of it into one frozen, seeded, content-addressable value
that serialises to a single JSON document:

* **workload shape** — workload name + config overrides (defaults
  filled through the workload's config dataclass, exactly as RunSpec
  does it);
* **machine spec** — ``UP``/``2P``/``4P``/``8P``…;
* **scheduler** — any registered policy, aliases resolved;
* **fault plan** — a full :class:`~repro.faults.plan.FaultPlan`, not a
  string reference, so a scenario file is self-contained;
* **probe set** — which observers ride the run (``profile`` /
  ``metrics``);
* **load schedule** — a :class:`~repro.serve.config.LoadSchedule` for
  the live ``serve`` workload.

The serialisation follows :class:`FaultPlan`'s pattern: ``to_dict`` →
compact sorted-JSON ``to_config`` → SHA-256 :attr:`key`.  Two scenarios
that mean the same thing — regardless of field order, alias spelling,
or spelled-out defaults — render byte-identical JSON and hash to the
same key.

The composition is *transparent*: :meth:`to_run_spec` folds the fault
plan and load schedule back into config scalars, and **omits empty
ones**, so a scenario with no faults and no probes addresses exactly
the cache cell a plain ``repro sweep`` invocation would (pinned by
``tests/obs/test_pipeline_identity.py``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from ..faults.plan import FaultPlan
from ..faults.plans import resolve_plan
from ..harness.registry import MACHINE_SPECS, resolve_scheduler, resolve_workload
from ..harness.spec import RunSpec
from ..serve.config import LoadPhase, LoadSchedule

__all__ = ["ScenarioSpec", "PROBE_KINDS", "resolve_scenario", "load_scenario_payload"]

#: Observers a scenario may request.  ``profile`` attaches the cycle
#: profiler, ``metrics`` the MetricsProbe; both are pipeline probes the
#: bit-identity contract guarantees never perturb the simulation.
PROBE_KINDS = ("metrics", "profile")

#: Config keys a scenario expresses through dedicated fields; passing
#: them as raw config overrides would create two sources of truth.
_COMPOSED_KEYS = ("fault_plan", "load_schedule")


def _normalize_fault_plan(value: Any) -> FaultPlan:
    if value is None or value == "":
        return FaultPlan()
    if isinstance(value, FaultPlan):
        return value
    if isinstance(value, Mapping):
        return FaultPlan.from_dict(dict(value))
    if isinstance(value, str):
        try:
            return resolve_plan(value)
        except KeyError as exc:
            raise ValueError(str(exc.args[0] if exc.args else exc)) from exc
    raise TypeError(
        f"fault_plan must be a FaultPlan, plan name, @file, inline JSON, "
        f"or dict; got {value!r}"
    )


def _normalize_load(value: Any) -> LoadSchedule:
    if value is None or value == "" or value == ():
        return LoadSchedule()
    if isinstance(value, LoadSchedule):
        return value
    if isinstance(value, str):
        return LoadSchedule.from_config(value)
    if isinstance(value, Mapping):
        return LoadSchedule.from_dict(dict(value))
    # An iterable of phases (LoadPhase instances or dicts).
    phases = []
    for phase in value:
        if isinstance(phase, LoadPhase):
            phases.append(phase)
        elif isinstance(phase, Mapping):
            phases.append(
                LoadPhase(
                    duration_s=float(phase["duration_s"]),
                    interval_ms=float(phase["interval_ms"]),
                )
            )
        else:
            raise TypeError(f"load phases must be LoadPhase or dict, got {phase!r}")
    return LoadSchedule(phases=tuple(phases))


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described experiment: cell + faults + probes + load.

    Construction is forgiving (aliases, plan names, phase dicts, a
    ``seed`` shorthand) but the stored value is strict canonical form,
    so equality, hashing, and :attr:`key` all agree.
    """

    name: str = "scenario"
    workload: str = "volano"
    scheduler: str = "reg"
    machine: str = "UP"
    config: Any = ()
    fault_plan: Any = None
    probes: Any = ()
    load: Any = None
    #: Shorthand for ``config["seed"]``; folded into the config at
    #: construction and re-read from it, so ``seed=7`` and
    #: ``config={"seed": 7}`` are the same scenario.  ``None`` keeps
    #: whatever the config (or the workload default) says.
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "workload", resolve_workload(self.workload))
            object.__setattr__(self, "scheduler", resolve_scheduler(self.scheduler))
        except KeyError as exc:
            raise ValueError(str(exc.args[0] if exc.args else exc)) from exc
        if self.machine not in MACHINE_SPECS:
            raise ValueError(
                f"unknown machine spec {self.machine!r}; "
                f"choose from {list(MACHINE_SPECS)}"
            )
        object.__setattr__(self, "fault_plan", _normalize_fault_plan(self.fault_plan))
        object.__setattr__(self, "load", _normalize_load(self.load))
        if not self.load.is_empty and self.workload != "serve":
            raise ValueError(
                f"load schedules apply to the 'serve' workload only; "
                f"{self.workload!r} paces itself"
            )
        probes = (self.probes,) if isinstance(self.probes, str) else tuple(self.probes)
        for probe in probes:
            if probe not in PROBE_KINDS:
                raise ValueError(
                    f"unknown probe {probe!r}; choose from {list(PROBE_KINDS)}"
                )
        object.__setattr__(self, "probes", tuple(sorted(set(probes))))
        overrides = dict(self.config)
        for key in _COMPOSED_KEYS:
            if key in overrides:
                raise ValueError(
                    f"config key {key!r} is composed by the scenario's "
                    f"dedicated field; set that instead"
                )
        if self.seed is not None:
            overrides["seed"] = int(self.seed)
        # Reuse RunSpec's normalisation: defaults filled through the
        # workload's config dataclass, unknown fields rejected, sorted.
        base = RunSpec(self.workload, self.scheduler, self.machine, overrides)
        normalized = tuple(
            (k, v) for k, v in base.config if k not in _COMPOSED_KEYS
        )
        object.__setattr__(self, "config", normalized)
        object.__setattr__(self, "seed", dict(normalized).get("seed"))

    # -- derived views -------------------------------------------------------

    @property
    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)

    @property
    def wants_profile(self) -> bool:
        return "profile" in self.probes

    @property
    def wants_metrics(self) -> bool:
        return "metrics" in self.probes

    @property
    def label(self) -> str:
        return f"{self.name} [{self.workload}/{self.scheduler}-{self.machine}]"

    def to_run_spec(self) -> RunSpec:
        """The harness cell this scenario addresses.

        Empty fault plans and load schedules are omitted (not embedded
        as ``{"faults": []}``), so the cell's cache key equals the plain
        invocation's — scenarios sweep through the existing
        :class:`~repro.harness.cache.ResultCache` unchanged.
        """
        overrides = self.config_dict
        if not self.fault_plan.is_empty:
            overrides["fault_plan"] = self.fault_plan.to_config()
        if not self.load.is_empty:
            overrides["load_schedule"] = self.load.to_config()
        return RunSpec(self.workload, self.scheduler, self.machine, overrides)

    # -- canonical serialisation --------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "workload": self.workload,
            "scheduler": self.scheduler,
            "machine": self.machine,
            "config": self.config_dict,
            "fault_plan": self.fault_plan.to_dict(),
            "probes": list(self.probes),
            "load": self.load.to_dict(),
        }

    def to_config(self) -> str:
        """Compact sorted-JSON canonical form — the string that hashes,
        and the on-disk scenario-file format."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def key(self) -> str:
        """SHA-256 of the canonical form: the scenario's content address."""
        return hashlib.sha256(self.to_config().encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        # Quarantine repro files wrap the spec under a "scenario" key so
        # they can carry the divergence record alongside; unwrap it.
        if "scenario" in data and isinstance(data["scenario"], Mapping):
            data = data["scenario"]
        return cls(
            name=str(data.get("name", "scenario")),
            workload=data.get("workload", "volano"),
            scheduler=data.get("scheduler", "reg"),
            machine=data.get("machine", "UP"),
            config=dict(data.get("config", {})),
            fault_plan=data.get("fault_plan"),
            probes=tuple(data.get("probes", ())),
            load=data.get("load"),
        )

    @classmethod
    def from_config(cls, text: str) -> "ScenarioSpec":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"scenario must be a JSON object, got {data!r}")
        return cls.from_dict(data)

    def __repr__(self) -> str:
        return f"<ScenarioSpec {self.label} {self.key[:12]}>"


def load_scenario_payload(path: Path) -> tuple[ScenarioSpec, dict[str, Any]]:
    """Load a scenario file, returning (spec, raw payload).

    The raw payload lets callers see wrapper keys a quarantined repro
    file carries (``divergences``, ``replay``) and react — the CLI
    auto-enables parity checking when it spots one.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"scenario file {path} must hold a JSON object")
    return ScenarioSpec.from_dict(data), data


def resolve_scenario(ref: str) -> ScenarioSpec:
    """A scenario from a registry name, ``@file``, inline JSON, or path.

    Mirrors :func:`repro.faults.resolve_plan`, with a bare existing file
    path accepted as a convenience (quarantine repro files are the
    common case: ``repro scenario run results/quarantine/….json``).
    """
    from .registry import named_scenarios

    named = named_scenarios()
    if ref in named:
        return named[ref]
    if ref.startswith("@"):
        return load_scenario_payload(Path(ref[1:]))[0]
    if ref.lstrip().startswith("{"):
        return ScenarioSpec.from_config(ref)
    try:
        is_file = Path(ref).is_file()
    except OSError:  # a ref far beyond NAME_MAX cannot be a path
        is_file = False
    if is_file:
        return load_scenario_payload(Path(ref))[0]
    raise KeyError(
        f"unknown scenario {ref!r}; use a registered name "
        f"(see `repro scenario list`), inline JSON, @file, or a file path"
    )
