"""Continuous stress-parity fuzzing over the scenario space.

The simulator's correctness story rests on a handful of *exact*
invariants that ordinary tests pin at a few hand-picked points.  This
module turns them into a property checked across the whole scenario
space: a seeded generator perturbs valid :class:`ScenarioSpec`\\ s within
:class:`FuzzBounds`, runs each one, and asserts four parity contracts —

``dispatch_parity``
    The live :class:`~repro.serve.SchedulerExecutor` and a reference
    real :class:`~repro.kernel.machine.Machine` replay the same seeded
    arrival trace and must agree on every pick, CPU placement, and
    remaining quantum (the PR-4 conformance property, re-derived per
    scenario from its content hash).
``probe_identity``
    Attaching the profiler + metrics probes must not perturb the
    simulation: workload metrics and SchedStats counters are compared
    field-for-field between an unprobed and a fully-probed run.
``cycle_conservation``
    :func:`repro.prof.conservation_errors` — the profiler's scheduler
    phases sum exactly to ``SchedStats.scheduler_cycles`` and
    ``lock_wait`` equals ``lock_spin_cycles``.
``metrics_reconciliation``
    :func:`repro.obs.reconcile_with_stats` — every MetricsProbe
    aggregate agrees exactly with the machine's own ledger.

Everything is a pure function of the spec: the arrival trace derives
from the scenario's content hash, so a diverging case written to
quarantine (:func:`write_quarantine`) is a **self-contained repro
file** — ``repro scenario run <file>`` reloads the spec, re-derives the
same trace, and replays the exact divergence.

Entry points: ``tools/stress_parity.py`` (CLI + CI job) and
``tests/scenario/test_fuzz.py``.  See ``docs/scenarios.md``.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..harness.registry import MACHINE_SPECS, SCHEDULERS
from ..harness.runner import execute_spec
from ..kernel.simulator import make_machine
from ..kernel.task import SchedPolicy, Task, TaskState
from ..sched.base import Scheduler
from ..obs.metrics import reconcile_with_stats
from ..prof.profiler import conservation_errors
from ..serve.executor import SchedulerExecutor
from .spec import ScenarioSpec

__all__ = [
    "FuzzBounds",
    "Divergence",
    "FuzzReport",
    "CHECKS",
    "generate_scenario",
    "mutate",
    "check_scenario",
    "write_quarantine",
    "run_fuzz",
]

#: The parity contracts, in the order they run per scenario.
CHECKS = (
    "dispatch_parity",
    "probe_identity",
    "cycle_conservation",
    "metrics_reconciliation",
)

#: Handlers in the dispatch-parity replay (matches the PR-4 suite).
_N_HANDLERS = 3


@dataclass(frozen=True)
class FuzzBounds:
    """The documented envelope fuzzed scenarios stay inside.

    Bounds are deliberately small: the fuzzer's power comes from *many
    cheap* scenarios, not big ones — every case runs its workload twice
    (unprobed + probed) plus a trace replay, and CI sweeps dozens per
    job.  Widen locally when hunting, but keep the defaults smoke-fast.
    """

    #: Simulated workloads under fuzz.  ``serve`` is excluded: it runs a
    #: real asyncio server on wall-clock time, so its results are not
    #: bit-reproducible and probe-identity cannot hold by construction.
    workloads: tuple = ("volano", "select-chat", "kernbench", "webserver")
    #: Machine specs scenarios may land on.
    machines: tuple = ("UP", "2P", "4P", "8P")
    #: Named kernel fault plans the fuzzer may attach ("" = none).  A
    #: safe subset of :data:`repro.faults.plans.NAMED_PLANS`: kernel
    #: faults only, all bounded, all conservation-preserving.
    fault_plans: tuple = ("", "", "spurious-storm", "clock-skew", "hang-one-worker")
    #: volano/select-chat shape.
    rooms: tuple = (1, 3)
    users_per_room: tuple = (2, 5)
    messages_per_user: tuple = (1, 3)
    #: kernbench shape.
    files: tuple = (8, 32)
    jobs: tuple = (1, 4)
    #: webserver shape.
    workers: tuple = (2, 4)
    clients: tuple = (2, 8)
    requests_per_client: tuple = (2, 6)
    #: Arrival jitter range (volano family), rounded to 3 decimals so
    #: the value is JSON-stable.
    jitter: tuple = (0.0, 0.5)
    #: Workload RNG seed range.
    seeds: tuple = (0, 9999)
    #: Ops in each dispatch-parity arrival trace.
    trace_len: int = 40
    #: Field mutations applied per :func:`mutate` call.
    mutations: tuple = (1, 3)


def _rand_config(workload: str, rng: random.Random, bounds: FuzzBounds) -> dict:
    """A workload config drawn uniformly inside the bounds."""
    config: dict = {"seed": rng.randint(*bounds.seeds)}
    if workload in ("volano", "select-chat"):
        config.update(
            rooms=rng.randint(*bounds.rooms),
            users_per_room=rng.randint(*bounds.users_per_room),
            messages_per_user=rng.randint(*bounds.messages_per_user),
            jitter=round(rng.uniform(*bounds.jitter), 3),
        )
    elif workload == "kernbench":
        config.update(
            files=rng.randint(*bounds.files),
            jobs=rng.randint(*bounds.jobs),
        )
    elif workload == "webserver":
        config.update(
            workers=rng.randint(*bounds.workers),
            clients=rng.randint(*bounds.clients),
            requests_per_client=rng.randint(*bounds.requests_per_client),
        )
    else:
        raise ValueError(f"workload {workload!r} is outside the fuzz bounds")
    return config


def generate_scenario(
    name: str,
    rng: random.Random,
    bounds: FuzzBounds = FuzzBounds(),
    scheduler: Optional[str] = None,
) -> ScenarioSpec:
    """One valid scenario drawn uniformly inside the bounds."""
    workload = rng.choice(bounds.workloads)
    return ScenarioSpec(
        name=name,
        workload=workload,
        scheduler=scheduler if scheduler else rng.choice(sorted(SCHEDULERS)),
        machine=rng.choice(bounds.machines),
        config=_rand_config(workload, rng, bounds),
        fault_plan=rng.choice(bounds.fault_plans),
        probes=("metrics", "profile"),
    )


def mutate(
    base: ScenarioSpec,
    rng: random.Random,
    bounds: FuzzBounds = FuzzBounds(),
) -> ScenarioSpec:
    """A valid neighbour of ``base``: 1–3 fields re-drawn in bounds.

    Mutations stay inside the same workload family when perturbing shape
    fields, and may also flip the machine, the fault plan, or the seed —
    the axes along which parity bugs historically hide (SMP wake dedup,
    fault-path accounting, seed-dependent recalc timing).
    """
    workload = base.workload
    config = dict(base.config)
    machine = base.machine
    fault_plan = base.fault_plan
    kinds = ["machine", "fault_plan", "seed", "shape"]
    for _ in range(rng.randint(*bounds.mutations)):
        kind = rng.choice(kinds)
        if kind == "machine":
            machine = rng.choice(bounds.machines)
        elif kind == "fault_plan":
            fault_plan = rng.choice(bounds.fault_plans)
        elif kind == "seed":
            config["seed"] = rng.randint(*bounds.seeds)
        else:
            fresh = _rand_config(workload, rng, bounds)
            fresh.pop("seed")
            field_name = rng.choice(sorted(fresh))
            config[field_name] = fresh[field_name]
    return ScenarioSpec(
        name=base.name,
        workload=workload,
        scheduler=base.scheduler,
        machine=machine,
        config=config,
        fault_plan=fault_plan,
        probes=base.probes,
    )


@dataclass(frozen=True)
class Divergence:
    """One violated contract on one scenario."""

    check: str
    detail: str

    def to_dict(self) -> dict:
        return {"check": self.check, "detail": self.detail}


# -- dispatch parity ---------------------------------------------------------


def _derive_trace(spec: ScenarioSpec, trace_len: int) -> list:
    """The scenario's arrival trace: a pure function of its content
    hash, so quarantined repros re-derive it bit-identically."""
    rng = random.Random(f"{spec.key}/dispatch-trace")
    trace: list = []
    for _ in range(trace_len):
        if rng.random() < 0.5:
            trace.append(("arrive", rng.randrange(_N_HANDLERS)))
        else:
            trace.append(("serve",))
    return trace


def _charge(task: Task, scheduler=None) -> None:
    """The executor's quantum rule, applied identically on both sides.

    Mirrors ``SchedulerExecutor.charge_slice``: after the counter math,
    the API-v2 ``on_tick`` hook fires for every non-FIFO charge, so a
    policy with an internal tick clock (clutch) sees the same number of
    ticks on the machine-replay side as on the executor side.
    """
    if task.policy is SchedPolicy.SCHED_FIFO:
        return
    if task.counter > 0:
        task.counter -= 1
    if scheduler is not None and type(scheduler).on_tick is not Scheduler.on_tick:
        scheduler.on_tick(task, task.processor)


def _replay_executor(sched_name: str, spec_name: str, trace: Sequence) -> list:
    spec = MACHINE_SPECS[spec_name]
    executor = SchedulerExecutor(
        SCHEDULERS[sched_name](), num_cpus=spec.num_cpus, smp=spec.smp
    )
    tasks = [executor.register(f"h{i}") for i in range(_N_HANDLERS)]
    pending = [0] * _N_HANDLERS
    order: list = []
    for op in trace:
        if op[0] == "arrive":
            i = op[1]
            pending[i] += 1
            executor.ready(tasks[i])
        else:
            picked = executor.pick()
            if picked is None:
                order.append(None)
                continue
            i = tasks.index(picked)
            if pending[i] > 0:
                pending[i] -= 1
            executor.charge_slice(picked)
            executor.release(picked, blocked=pending[i] == 0)
            order.append((picked.name, picked.processor))
    return order + [[t.counter for t in tasks]]


def _replay_machine(sched_name: str, spec_name: str, trace: Sequence) -> list:
    """Reference host: a real Machine, its real ``wake_up_process``."""
    scheduler = SCHEDULERS[sched_name]()
    machine = make_machine(scheduler, MACHINE_SPECS[spec_name])
    tasks = [Task(name=f"h{i}") for i in range(_N_HANDLERS)]
    for task in tasks:
        task.state = TaskState.INTERRUPTIBLE
        machine._tasks[task.pid] = task
        machine._live_count += 1
    pending = [0] * _N_HANDLERS
    cursor = 0
    order: list = []
    ncpu = len(machine.cpus)
    for op in trace:
        if op[0] == "arrive":
            i = op[1]
            pending[i] += 1
            machine.wake_up_process(tasks[i], machine.clock.now)
        else:
            picked = None
            for _ in range(ncpu):
                cpu = machine.cpus[cursor]
                cursor = (cursor + 1) % ncpu
                prev = cpu.current
                decision = scheduler.schedule(prev, cpu)
                prev.has_cpu = False
                nxt = decision.next_task
                if nxt is None:
                    cpu.current = cpu.idle_task
                    cpu.idle_task.has_cpu = True
                    continue
                nxt.has_cpu = True
                nxt.processor = cpu.cpu_id
                cpu.current = nxt
                picked = nxt
                break
            if picked is None:
                order.append(None)
                continue
            i = tasks.index(picked)
            if pending[i] > 0:
                pending[i] -= 1
            _charge(picked, scheduler)
            picked.state = (
                TaskState.RUNNING if pending[i] else TaskState.INTERRUPTIBLE
            )
            order.append((picked.name, picked.processor))
    return order + [[t.counter for t in tasks]]


def _check_dispatch_parity(spec: ScenarioSpec, trace_len: int) -> list[Divergence]:
    trace = _derive_trace(spec, trace_len)
    live = _replay_executor(spec.scheduler, spec.machine, trace)
    reference = _replay_machine(spec.scheduler, spec.machine, trace)
    if live == reference:
        return []
    for step, (got, want) in enumerate(zip(live, reference)):
        if got != want:
            return [
                Divergence(
                    "dispatch_parity",
                    f"step {step}/{len(trace)}: executor={got!r} "
                    f"machine={want!r} (trace derives from scenario key)",
                )
            ]
    return [
        Divergence(
            "dispatch_parity",
            f"replay lengths differ: executor={len(live)} machine={len(reference)}",
        )
    ]


# -- simulation parity -------------------------------------------------------


def _dict_diff(label: str, got: dict, want: dict) -> list[str]:
    lines = []
    for key in sorted(set(got) | set(want)):
        a, b = got.get(key), want.get(key)
        if a != b:
            lines.append(f"{label}[{key}]: probed={a!r} plain={b!r}")
    return lines


def check_scenario(
    spec: ScenarioSpec, trace_len: int = FuzzBounds().trace_len
) -> list[Divergence]:
    """Every parity contract on one scenario; empty list = all hold.

    Pure in the spec: the same spec (same content hash) always replays
    the same trace and the same two simulation runs, which is what makes
    quarantined repro files exact.
    """
    divergences = _check_dispatch_parity(spec, trace_len)

    run_spec = spec.to_run_spec()
    plain = execute_spec(run_spec)
    probed = execute_spec(run_spec, profile=True, metrics=True)

    identity = _dict_diff("stats", probed.stats, plain.stats) + _dict_diff(
        "metrics", probed.metrics, plain.metrics
    )
    divergences += [Divergence("probe_identity", line) for line in identity]
    divergences += [
        Divergence("cycle_conservation", line)
        for line in conservation_errors(probed.profiler(), probed.stats)
    ]
    divergences += [
        Divergence("metrics_reconciliation", line)
        for line in reconcile_with_stats(probed.metrics_probe(), probed.stats)
    ]
    return divergences


# -- quarantine --------------------------------------------------------------


def write_quarantine(
    spec: ScenarioSpec,
    divergences: Sequence[Divergence],
    quarantine_dir: Path,
) -> Path:
    """Persist a diverging scenario as a self-contained repro file.

    The file is a valid ``repro scenario run`` input: the spec travels
    under the ``scenario`` key (``ScenarioSpec.from_dict`` unwraps it),
    alongside the observed divergences and a replay hint.  The CLI spots
    the ``divergences`` key and re-checks automatically on replay.
    """
    quarantine_dir = Path(quarantine_dir)
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    path = quarantine_dir / f"scenario-{spec.key[:12]}.json"
    payload = {
        "scenario": spec.to_dict(),
        "key": spec.key,
        "divergences": [d.to_dict() for d in divergences],
        "replay": f"python -m repro scenario run {path}",
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# -- the fuzz loop -----------------------------------------------------------


@dataclass
class FuzzReport:
    """Outcome of one :func:`run_fuzz` sweep."""

    seed: int
    count: int
    checks_run: dict[str, int] = field(default_factory=dict)
    #: (scenario, divergences) for every diverging case.
    divergent: list = field(default_factory=list)
    #: Quarantine files written (empty when no dir was given).
    quarantined: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergent

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "checks_run": dict(self.checks_run),
            "divergent": [
                {
                    "scenario": spec.to_dict(),
                    "key": spec.key,
                    "divergences": [d.to_dict() for d in divs],
                }
                for spec, divs in self.divergent
            ],
            "quarantined": [str(p) for p in self.quarantined],
            "ok": self.ok,
        }


def run_fuzz(
    seed: int,
    count: int,
    schedulers: Optional[Sequence[str]] = None,
    bounds: FuzzBounds = FuzzBounds(),
    quarantine_dir: Optional[Path] = None,
    progress: Optional[Callable[[int, ScenarioSpec, list], None]] = None,
) -> FuzzReport:
    """Fuzz ``count`` scenarios from ``seed``; deterministic end to end.

    Scheduler coverage is forced, not sampled: case ``i`` runs on
    ``schedulers[i % len(schedulers)]`` (default: every registered
    scheduler), so even a tiny CI sweep exercises all policies.  Each
    case is a fresh generate + mutate, giving both uniform draws and
    near-neighbour pairs across the sweep.
    """
    schedulers = list(schedulers) if schedulers else sorted(SCHEDULERS)
    rng = random.Random(f"stress-parity/{seed}")
    report = FuzzReport(seed=seed, count=count)
    report.checks_run = {check: 0 for check in CHECKS}
    for i in range(count):
        scheduler = schedulers[i % len(schedulers)]
        base = generate_scenario(f"fuzz-{seed}-{i}", rng, bounds, scheduler)
        spec = mutate(base, rng, bounds)
        divergences = check_scenario(spec, trace_len=bounds.trace_len)
        for check in CHECKS:
            report.checks_run[check] += 1
        if divergences:
            report.divergent.append((spec, divergences))
            if quarantine_dir is not None:
                report.quarantined.append(
                    write_quarantine(spec, divergences, quarantine_dir)
                )
        if progress is not None:
            progress(i, spec, divergences)
    return report
