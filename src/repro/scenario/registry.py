"""The named-scenario catalogue.

``named_scenarios()`` materialises a matrix of a couple hundred
ready-to-run :class:`~repro.scenario.spec.ScenarioSpec`\\ s so sweeps,
CI jobs, and humans can address experiments by name instead of
re-deriving flag soup:

* ``{workload}-{sched}-{machine}-{size}`` — every simulated workload ×
  every registered scheduler × UP/2P/4P/8P at two smoke-safe sizes
  (no probes, so each addresses exactly the plain sweep's cache cell);
* ``profiled-{workload}-{sched}`` — the 2P small cell with both
  observers attached (``metrics`` + ``profile``);
* ``chaos-{plan}-{sched}`` — VolanoMark on 2P under a named kernel
  fault plan;
* ``serve-{shape}-{sched}`` — the live workload under a phased offered
  load (spike / ramp);
* ``cluster-survival-{sched}`` — the sharded-cluster chaos headline
  (shard SIGKILLed mid-run, zero dropped completions), projected onto
  a cluster by :meth:`repro.cluster.ClusterConfig.from_scenario`;
* ``cluster-heal-{sched}`` — the self-healing headline for *every*
  registered scheduler: same kill, but under ``kill-respawn-shard``
  the supervisor respawns the shard and the router hands its slots
  back, so the run must restore full capacity (``recovered``), not
  merely survive degraded.

Sizes are deliberately tiny — the catalogue's job is breadth (hundreds
of distinct cells through one front door), not paper-scale load; scale
up with ``--config`` overrides or a scenario file.
"""

from __future__ import annotations

from typing import Optional

from ..sched.registry import scheduler_names
from ..serve.config import LoadPhase
from .spec import ScenarioSpec

__all__ = ["named_scenarios", "scenario_names"]

#: Machines the matrix spans: the paper's uniprocessor baseline plus
#: the SMP sizes the scaling figures sweep.
_MACHINES = ("UP", "2P", "4P", "8P")

#: Per-workload config overrides at the two catalogue sizes.
_SIZES: dict[str, dict[str, dict]] = {
    "volano": {
        "small": {"rooms": 1, "users_per_room": 3, "messages_per_user": 2},
        "medium": {"rooms": 2, "users_per_room": 4, "messages_per_user": 3},
    },
    "select-chat": {
        "small": {"rooms": 1, "users_per_room": 3, "messages_per_user": 2},
        "medium": {"rooms": 2, "users_per_room": 4, "messages_per_user": 3},
    },
    "kernbench": {
        "small": {"files": 12, "jobs": 2},
        "medium": {"files": 40, "jobs": 4},
    },
    "webserver": {
        "small": {"workers": 2, "clients": 4, "requests_per_client": 3},
        "medium": {"workers": 4, "clients": 8, "requests_per_client": 5},
    },
}

#: Kernel fault plans the chaos scenarios exercise (a safe, quick subset
#: of :data:`repro.faults.plans.NAMED_PLANS`).
_CHAOS_PLANS = ("kill-one-worker", "spurious-storm", "clock-skew")

#: Offered-load shapes for the live ``serve`` scenarios.
_LOAD_SHAPES: dict[str, tuple] = {
    "spike": (
        LoadPhase(duration_s=1.0, interval_ms=20.0),
        LoadPhase(duration_s=1.0, interval_ms=4.0),
        LoadPhase(duration_s=1.0, interval_ms=20.0),
    ),
    "ramp": (
        LoadPhase(duration_s=1.0, interval_ms=20.0),
        LoadPhase(duration_s=1.0, interval_ms=10.0),
        LoadPhase(duration_s=1.0, interval_ms=5.0),
    ),
}

_CACHE: Optional[dict[str, ScenarioSpec]] = None


def _build() -> dict[str, ScenarioSpec]:
    catalogue: dict[str, ScenarioSpec] = {}

    def add(spec: ScenarioSpec) -> None:
        if spec.name in catalogue:
            raise ValueError(f"duplicate scenario name {spec.name!r}")
        catalogue[spec.name] = spec

    # The simulated matrix: workload x scheduler x machine x size.
    for workload, sizes in _SIZES.items():
        for sched in scheduler_names():
            for machine in _MACHINES:
                for size, overrides in sizes.items():
                    add(
                        ScenarioSpec(
                            name=f"{workload}-{sched}-{machine.lower()}-{size}",
                            workload=workload,
                            scheduler=sched,
                            machine=machine,
                            config=overrides,
                        )
                    )

    # Observer-attached cells: both probes on the 2P small cell.
    for workload, sizes in _SIZES.items():
        for sched in scheduler_names():
            add(
                ScenarioSpec(
                    name=f"profiled-{workload}-{sched}",
                    workload=workload,
                    scheduler=sched,
                    machine="2P",
                    config=sizes["small"],
                    probes=("metrics", "profile"),
                )
            )

    # Chaos: VolanoMark under each named kernel plan, per scheduler.
    for plan in _CHAOS_PLANS:
        for sched in scheduler_names():
            add(
                ScenarioSpec(
                    name=f"chaos-{plan}-{sched}",
                    workload="volano",
                    scheduler=sched,
                    machine="2P",
                    config=_SIZES["volano"]["small"],
                    fault_plan=plan,
                )
            )

    # Live serving under a phased offered load (wall-clock seconds; kept
    # to a 3-second profile so a scenario run stays a smoke test).
    for shape, phases in _LOAD_SHAPES.items():
        for sched in ("reg", "elsc"):
            add(
                ScenarioSpec(
                    name=f"serve-{shape}-{sched}",
                    workload="serve",
                    scheduler=sched,
                    machine="2P",
                    config={
                        "rooms": 1,
                        "clients_per_room": 4,
                        "duration_s": 4.0,
                    },
                    load=phases,
                )
            )

    # The cluster survival headline: the live workload sharded across
    # OS processes, one shard SIGKILLed mid-run, zero dropped
    # completions.  ``ClusterConfig.from_scenario`` projects these onto
    # a cluster (`repro cluster chaos --scenario cluster-survival-reg`);
    # shard count and framing are runtime knobs, everything else —
    # load shape, per-shard policy, the kill — is this file.
    for sched in ("reg", "elsc"):
        add(
            ScenarioSpec(
                name=f"cluster-survival-{sched}",
                workload="serve",
                scheduler=sched,
                machine="UP",
                config={
                    "rooms": 8,
                    "clients_per_room": 2,
                    "messages_per_client": 25,
                    "message_interval_ms": 80.0,
                    "duration_s": 12.0,
                },
                fault_plan="kill-one-shard",
            )
        )

    # The self-healing headline, for every registered scheduler: the
    # same mid-run SIGKILL, but the ``kill-respawn-shard`` plan runs
    # with respawn on (the ClusterConfig default), so the gate is
    # ``recovered`` — capacity back to N shards, post-recovery
    # throughput within 15% of pre-kill — on top of zero drops.
    for sched in scheduler_names():
        add(
            ScenarioSpec(
                name=f"cluster-heal-{sched}",
                workload="serve",
                scheduler=sched,
                machine="UP",
                config={
                    "rooms": 8,
                    "clients_per_room": 2,
                    # The schedule must outlive recovery by a wide margin
                    # (kill at 1s, respawn+handback ~0.3s later) so the
                    # post-recovery throughput window measures steady
                    # state, not the drain tail: 45 × 80ms ≈ 3.6s.
                    "messages_per_client": 45,
                    "message_interval_ms": 80.0,
                    "duration_s": 12.0,
                },
                fault_plan="kill-respawn-shard",
            )
        )

    return catalogue


def named_scenarios() -> dict[str, ScenarioSpec]:
    """The full catalogue, name → spec (built once, then cached)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = _build()
    return _CACHE


def scenario_names() -> list[str]:
    return sorted(named_scenarios())
