"""Run scenarios through the existing harness, cache and all.

A scenario is sugar over a :class:`~repro.harness.spec.RunSpec` plus
runner flags, so execution delegates wholesale to
:class:`~repro.harness.runner.ParallelRunner` — same pool, same
:class:`~repro.harness.cache.ResultCache`, same manifest.  The one
wrinkle: the runner's ``profile``/``metrics`` switches are global per
``run()`` call, while each scenario carries its own probe set.  The
scenario runner therefore buckets the batch by probe combination and
drives one runner pass per bucket, stitching results back into input
order — a matrix of hundreds of scenarios still sweeps through the
cache unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ..harness.cache import ResultCache
from ..harness.result import CellResult
from ..harness.runner import (
    DEFAULT_MANIFEST_PATH,
    DEFAULT_PROFILE_TICKS,
    ParallelRunner,
    execute_spec,
)
from .spec import ScenarioSpec

__all__ = ["run_scenarios", "run_scenario"]

#: progress callback signature: (scenario, result, cached)
ScenarioProgressFn = Callable[[ScenarioSpec, CellResult, bool], None]


def run_scenario(scenario: ScenarioSpec) -> CellResult:
    """Run one scenario in-process, no cache, no pool — the reference
    path the fuzzer and the conformance tests lean on."""
    return execute_spec(
        scenario.to_run_spec(),
        profile=scenario.wants_profile,
        metrics=scenario.wants_metrics,
    )


def run_scenarios(
    scenarios: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    manifest_path: Union[str, Path, None] = DEFAULT_MANIFEST_PATH,
    progress: Optional[ScenarioProgressFn] = None,
    profile_ticks: int = DEFAULT_PROFILE_TICKS,
    max_retries: int = 2,
    cell_timeout_s: Optional[float] = None,
    on_error: str = "raise",
) -> list[Optional[CellResult]]:
    """Run a batch of scenarios; results align with input by index.

    Scenarios are grouped by ``(wants_profile, wants_metrics)`` and each
    group goes through one :class:`ParallelRunner` pass, so mixed
    batches neither over-instrument plain cells (which would change
    their cache entries' shape) nor under-instrument probed ones.
    """
    scenarios = list(scenarios)
    buckets: dict[tuple[bool, bool], list[int]] = {}
    for index, scenario in enumerate(scenarios):
        buckets.setdefault(
            (scenario.wants_profile, scenario.wants_metrics), []
        ).append(index)

    results: list[Optional[CellResult]] = [None] * len(scenarios)
    for (wants_profile, wants_metrics), indices in sorted(buckets.items()):
        runner = ParallelRunner(
            jobs=jobs,
            cache=cache,
            manifest_path=manifest_path,
            progress=None,
            profile=wants_profile,
            profile_ticks=profile_ticks,
            metrics=wants_metrics,
            max_retries=max_retries,
            cell_timeout_s=cell_timeout_s,
            on_error=on_error,
        )
        if progress is not None:
            by_key: dict[str, ScenarioSpec] = {}
            for i in indices:
                by_key.setdefault(scenarios[i].to_run_spec().key, scenarios[i])
            runner.progress = lambda spec, result, cached, _m=by_key: progress(
                _m[spec.key], result, cached
            )
        batch = runner.run([scenarios[i].to_run_spec() for i in indices])
        for slot, result in zip(indices, batch):
            results[slot] = result
    return results
