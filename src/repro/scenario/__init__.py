"""repro.scenario — the experiment DSL and its stress-parity fuzzer.

A :class:`ScenarioSpec` composes everything that shapes an experiment —
workload shape, machine spec, scheduler, fault plan, probe set, offered
load schedule — into one frozen, seeded, content-addressable value with
a canonical JSON form, generalising the :class:`~repro.faults.plan.
FaultPlan` pattern to the whole run.  A catalogue of hundreds of named
scenarios (:func:`named_scenarios`) makes the matrix addressable by
name, and :func:`run_scenarios` sweeps any batch through the existing
harness cache unchanged.

:mod:`repro.scenario.fuzz` turns the spec into a correctness engine: a
seeded generator perturbs scenarios within documented bounds and
asserts four exact parity contracts per case (executor-vs-Machine
dispatch, probe bit-identity, cycle conservation, metrics
reconciliation), quarantining any divergence as a self-contained repro
file that ``repro scenario run <file>`` replays exactly.

Entry points: ``python -m repro scenario run|list|render``,
``tools/stress_parity.py``, ``make stress``.  See ``docs/scenarios.md``.
"""

from .fuzz import (
    CHECKS,
    Divergence,
    FuzzBounds,
    FuzzReport,
    check_scenario,
    generate_scenario,
    mutate,
    run_fuzz,
    write_quarantine,
)
from .registry import named_scenarios, scenario_names
from .runner import run_scenario, run_scenarios
from .spec import (
    PROBE_KINDS,
    ScenarioSpec,
    load_scenario_payload,
    resolve_scenario,
)

__all__ = [
    "ScenarioSpec",
    "PROBE_KINDS",
    "resolve_scenario",
    "load_scenario_payload",
    "named_scenarios",
    "scenario_names",
    "run_scenario",
    "run_scenarios",
    "CHECKS",
    "FuzzBounds",
    "FuzzReport",
    "Divergence",
    "generate_scenario",
    "mutate",
    "check_scenario",
    "write_quarantine",
    "run_fuzz",
]
