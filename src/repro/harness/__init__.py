"""Parallel experiment harness: specs, caching, and a process-pool runner.

Every figure in the paper is a sweep — rooms × schedulers × machine
specs — whose cells are *independent simulations*.  This package gives
those cells a canonical identity (:class:`RunSpec`), a JSON-serialisable
outcome (:class:`CellResult`), a content-addressed on-disk cache
(:class:`ResultCache`), and a :class:`ParallelRunner` that fans cells
across a ``ProcessPoolExecutor`` while keeping result order
deterministic.  The CLI figure commands, ``python -m repro sweep``, the
report builder and the benchmark suite all run through it.

See ``docs/harness.md`` for the cache layout and manifest schema.
"""

from .cache import CACHE_VERSION, ResultCache
from .registry import (
    MACHINE_SPECS,
    SCHEDULER_ALIASES,
    SCHEDULERS,
    WORKLOAD_ALIASES,
    WORKLOADS,
    WorkloadDef,
    resolve_scheduler,
    resolve_workload,
)
from .result import CellResult
from .runner import ParallelRunner, default_jobs, execute_spec
from .spec import RunSpec

__all__ = [
    "RunSpec",
    "CellResult",
    "ResultCache",
    "CACHE_VERSION",
    "ParallelRunner",
    "execute_spec",
    "default_jobs",
    "SCHEDULERS",
    "SCHEDULER_ALIASES",
    "MACHINE_SPECS",
    "WORKLOADS",
    "WORKLOAD_ALIASES",
    "WorkloadDef",
    "resolve_scheduler",
    "resolve_workload",
]
