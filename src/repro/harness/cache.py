"""Content-addressed on-disk result cache.

Layout (under ``results/cache/`` by default)::

    results/cache/<key[:2]>/<key>.json
    results/cache/quarantine/<key>.json.bad

where ``key`` is :attr:`RunSpec.key` (SHA-256 of the spec's canonical
JSON).  Each entry stores the spec alongside the result so a cache
directory is self-describing and auditable with ``jq``, plus a
``sha256`` checksum over the rest of the entry so bit-rot and torn
writes are *detected*, not just shrugged off.

Robustness contract: **any** unreadable, truncated, corrupted, or
mismatched entry is a cache *miss*, never an error — the runner simply
recomputes the cell and rewrites the entry.  Entries that are damaged
(unparseable, checksum mismatch, foreign key) are additionally moved to
the ``quarantine/`` subdirectory — renamed with a ``.json.bad`` suffix
so no lookup or ``clear()`` glob ever matches them again — where
``repro clean-cache --quarantined`` can list and purge them.  Entries
that are merely *stale* (older schema or library version) are normal
misses and get overwritten in place.  Writes are atomic (temp file +
``os.replace``) so a killed sweep can't leave a torn entry behind for
the next one to trip on.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from .result import CellResult
from .spec import RunSpec


def _library_version() -> str:
    # Deferred so the harness can be re-exported from the package root
    # without an import cycle.
    from .. import __version__

    return __version__

__all__ = ["ResultCache", "CACHE_VERSION", "DEFAULT_CACHE_DIR"]

#: Bump to invalidate every existing cache entry (schema change).
CACHE_VERSION = 3  # v3: entries carry a sha256 integrity checksum

DEFAULT_CACHE_DIR = Path("results") / "cache"

_QUARANTINE_DIR = "quarantine"


def _entry_digest(entry: dict) -> str:
    """Checksum over the entry minus its own ``sha256`` field."""
    core = {k: v for k, v in entry.items() if k != "sha256"}
    canonical = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class _CorruptEntry(ValueError):
    """An entry that is damaged (vs merely stale) — quarantine it."""


class ResultCache:
    """Spec-hash → :class:`CellResult` store on the filesystem."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0
        #: Damaged entries moved aside by this instance.
        self.quarantined = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / _QUARANTINE_DIR

    def get(
        self,
        spec: RunSpec,
        require_profile: bool = False,
        require_metrics: bool = False,
    ) -> Optional[CellResult]:
        """The cached result for ``spec``, or ``None`` on any miss —
        including a corrupt or foreign entry at the expected path.

        ``require_profile`` treats an entry without a cycle-attribution
        profile as a miss (the cell is recomputed with profiling on and
        the richer entry overwrites the plain one; profiled entries
        serve plain requests unchanged).  ``require_metrics`` applies
        the same superset semantics to the ``MetricsProbe`` snapshot.
        Damaged entries — unparseable JSON, checksum failures, entries
        whose key does not match their path — are moved to quarantine
        on the way to the miss.
        """
        path = self.path_for(spec.key)
        try:
            result = self._load(path, spec, require_profile, require_metrics)
        except _CorruptEntry:
            self._quarantine(path, spec.key)
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Missing file or stale (schema/library) entry: a plain miss;
            # the recompute overwrites it in place.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _load(
        self,
        path: Path,
        spec: RunSpec,
        require_profile: bool,
        require_metrics: bool,
    ) -> CellResult:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            entry = json.loads(text)
        except ValueError as exc:
            raise _CorruptEntry(f"unparseable entry: {exc}") from exc
        if not isinstance(entry, dict):
            raise _CorruptEntry("entry is not a JSON object")
        if "cache_version" not in entry:
            raise _CorruptEntry("entry missing cache_version")
        if entry["cache_version"] != CACHE_VERSION:
            raise ValueError("cache schema version mismatch")  # stale
        if entry.get("library_version") != _library_version():
            raise ValueError("library version mismatch")  # stale
        stored = entry.get("sha256")
        if stored != _entry_digest(entry):
            raise _CorruptEntry("checksum mismatch (torn write or bit-rot)")
        if entry.get("key") != spec.key:
            raise _CorruptEntry("entry key does not match spec")
        try:
            result = CellResult.from_dict(entry["result"])
        except (ValueError, KeyError, TypeError) as exc:
            raise _CorruptEntry(f"undecodable result: {exc}") from exc
        if result.spec_key != spec.key:
            raise _CorruptEntry("result spec_key does not match spec")
        if require_profile and not result.profiled:
            raise ValueError("entry has no profile")  # valid, just plain
        if require_metrics and not result.metered:
            raise ValueError("entry has no metrics")  # valid, just plain
        return result

    def _quarantine(self, path: Path, key: str) -> None:
        """Move a damaged entry aside; never served, never re-globbed."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / f"{key}.json.bad")
            self.quarantined += 1
        except OSError:
            # Quarantine is best-effort: losing the move still misses.
            pass

    def put(self, spec: RunSpec, result: CellResult) -> Path:
        """Atomically (re)write the entry for ``spec``."""
        if result.spec_key != spec.key:
            raise ValueError(
                f"result {result.spec_key[:12]} does not belong to "
                f"spec {spec.key[:12]}"
            )
        path = self.path_for(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_version": CACHE_VERSION,
            "library_version": _library_version(),
            "key": spec.key,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        entry["sha256"] = _entry_digest(entry)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    # -- quarantine management ---------------------------------------------------

    def quarantined_entries(self) -> list[Path]:
        """Damaged entries previously moved aside, sorted by name."""
        if not self.quarantine_dir.exists():
            return []
        return sorted(self.quarantine_dir.glob("*.json.bad"))

    def purge_quarantined(self) -> int:
        """Delete quarantined entries; returns how many were removed."""
        removed = 0
        for path in self.quarantined_entries():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.root} entries={len(self)} "
            f"hits={self.hits} misses={self.misses} "
            f"quarantined={self.quarantined}>"
        )
