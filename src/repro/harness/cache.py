"""Content-addressed on-disk result cache.

Layout (under ``results/cache/`` by default)::

    results/cache/<key[:2]>/<key>.json

where ``key`` is :attr:`RunSpec.key` (SHA-256 of the spec's canonical
JSON).  Each entry stores the spec alongside the result so a cache
directory is self-describing and auditable with ``jq``.

Robustness contract: **any** unreadable, truncated, corrupted, or
mismatched entry is a cache *miss*, never an error — the runner simply
recomputes the cell and rewrites the entry.  Writes are atomic
(temp file + ``os.replace``) so a killed sweep can't leave a torn entry
behind for the next one to trip on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from .result import CellResult
from .spec import RunSpec


def _library_version() -> str:
    # Deferred so the harness can be re-exported from the package root
    # without an import cycle.
    from .. import __version__

    return __version__

__all__ = ["ResultCache", "CACHE_VERSION", "DEFAULT_CACHE_DIR"]

#: Bump to invalidate every existing cache entry (schema change).
CACHE_VERSION = 2  # v2: SchedStats gained the `preemptions` counter

DEFAULT_CACHE_DIR = Path("results") / "cache"


class ResultCache:
    """Spec-hash → :class:`CellResult` store on the filesystem."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else DEFAULT_CACHE_DIR
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(
        self, spec: RunSpec, require_profile: bool = False
    ) -> Optional[CellResult]:
        """The cached result for ``spec``, or ``None`` on any miss —
        including a corrupt or foreign entry at the expected path.

        ``require_profile`` treats an entry without a cycle-attribution
        profile as a miss (the cell is recomputed with profiling on and
        the richer entry overwrites the plain one; profiled entries
        serve plain requests unchanged).
        """
        path = self.path_for(spec.key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry["cache_version"] != CACHE_VERSION:
                raise ValueError("cache schema version mismatch")
            if entry["library_version"] != _library_version():
                raise ValueError("library version mismatch")
            if entry["key"] != spec.key:
                raise ValueError("entry key does not match spec")
            result = CellResult.from_dict(entry["result"])
            if result.spec_key != spec.key:
                raise ValueError("result spec_key does not match spec")
            if require_profile and not result.profiled:
                raise ValueError("entry has no profile")
        except (OSError, ValueError, KeyError, TypeError):
            # Missing file, torn write, hand-edited JSON, renamed entry,
            # old schema: all equally a miss.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: RunSpec, result: CellResult) -> Path:
        """Atomically (re)write the entry for ``spec``."""
        if result.spec_key != spec.key:
            raise ValueError(
                f"result {result.spec_key[:12]} does not belong to "
                f"spec {spec.key[:12]}"
            )
        path = self.path_for(spec.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_version": CACHE_VERSION,
            "library_version": _library_version(),
            "key": spec.key,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle, sort_keys=True, indent=1)
            handle.write("\n")
        os.replace(tmp, path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.root} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
