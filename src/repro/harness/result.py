"""The JSON-round-trippable outcome of one experiment cell.

A full workload result (``VolanoResult`` etc.) drags the whole
:class:`~repro.kernel.simulator.SimResult` along — machine, run summary,
trace — which neither pickles cheaply across a process pool nor belongs
in an on-disk cache.  :class:`CellResult` is the portable subset every
figure actually consumes: the workload's scalar metrics plus the raw
:class:`~repro.sched.stats.SchedStats` counters, from which the derived
figures (cycles/schedule, examined/schedule) are recomputed on demand.

Python's ``json`` emits ``repr(float)`` and parses it back exactly, so a
cached cell is *bit-identical* to the freshly computed one — the
property tests in ``tests/harness/`` hold the harness to that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..sched.stats import SchedStats

__all__ = ["CellResult"]

_STAT_FIELDS = tuple(SchedStats.__dataclass_fields__)


@dataclass(frozen=True)
class CellResult:
    """Everything a sweep keeps from one simulation."""

    spec_key: str
    workload: str
    scheduler: str
    machine: str
    #: The scheduler's self-reported name (e.g. ``"elsc"``).
    scheduler_name: str
    #: Workload metrics — throughput, latencies, elapsed time …
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Raw SchedStats counters (ints), keyed by field name.
    stats: dict[str, int] = field(default_factory=dict)
    #: Cycle-attribution profile (``Profiler.to_dict()``); empty when
    #: the cell ran unprofiled.  A profiled entry is a superset of the
    #: plain one, so it serves unprofiled requests too.
    profile: dict[str, Any] = field(default_factory=dict)
    #: Observability snapshot (``MetricsProbe.to_dict()``); empty when
    #: the cell ran without ``--metrics``.  Named ``obs_metrics`` to
    #: keep clear of the workload's scalar ``metrics`` above; same
    #: superset semantics as ``profile``.
    obs_metrics: dict[str, Any] = field(default_factory=dict)

    # -- convenience views -------------------------------------------------

    @property
    def throughput(self) -> float:
        return float(self.metrics.get("throughput", 0.0))

    @property
    def elapsed_seconds(self) -> float:
        return float(self.metrics.get("elapsed_seconds", 0.0))

    @property
    def scheduler_fraction(self) -> float:
        return float(self.metrics.get("scheduler_fraction", 0.0))

    def metric(self, name: str) -> Any:
        return self.metrics[name]

    def sched_stats(self) -> SchedStats:
        """Rebuild a :class:`SchedStats` so derived figures
        (``cycles_per_schedule()`` …) work exactly as on a live run."""
        return SchedStats(
            **{f: self.stats.get(f, 0) for f in _STAT_FIELDS}
        )

    @property
    def profiled(self) -> bool:
        return bool(self.profile)

    def profiler(self) -> Any:
        """Rebuild the :class:`~repro.prof.Profiler` for a profiled cell."""
        if not self.profile:
            raise ValueError(f"cell {self.spec_key[:12]} was not profiled")
        from ..prof.profiler import Profiler  # local import: layering

        return Profiler.from_dict(self.profile)

    @property
    def metered(self) -> bool:
        return bool(self.obs_metrics)

    def metrics_probe(self) -> Any:
        """Rebuild the :class:`~repro.obs.MetricsProbe` for a metered cell."""
        if not self.obs_metrics:
            raise ValueError(f"cell {self.spec_key[:12]} has no metrics")
        from ..obs.metrics import MetricsProbe  # local import: layering

        return MetricsProbe.from_dict(self.obs_metrics)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec_key": self.spec_key,
            "workload": self.workload,
            "scheduler": self.scheduler,
            "machine": self.machine,
            "scheduler_name": self.scheduler_name,
            "metrics": dict(self.metrics),
            "stats": dict(self.stats),
            "profile": dict(self.profile),
            "obs_metrics": dict(self.obs_metrics),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "CellResult":
        return CellResult(
            spec_key=data["spec_key"],
            workload=data["workload"],
            scheduler=data["scheduler"],
            machine=data["machine"],
            scheduler_name=data["scheduler_name"],
            metrics=dict(data["metrics"]),
            stats={k: int(v) for k, v in data["stats"].items()},
            # Absent in pre-profiler cache entries: default to empty.
            profile=dict(data.get("profile") or {}),
            # Absent in pre-metrics cache entries: default to empty.
            obs_metrics=dict(data.get("obs_metrics") or {}),
        )

    def canonical(self) -> str:
        """Sorted-key JSON — byte-comparable across cache round trips."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:
        return (
            f"<CellResult {self.workload}/{self.scheduler}-{self.machine} "
            f"{self.spec_key[:12]}>"
        )
