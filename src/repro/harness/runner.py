"""Fan experiment cells across a process pool, deterministically.

:class:`ParallelRunner` takes a sequence of :class:`RunSpec`\\ s and
returns one :class:`CellResult` per spec **in input order**, however the
pool happens to finish them.  Each unique spec is computed at most once
per call (duplicates are served from the in-memory round), consulted
against the on-disk :class:`ResultCache` first, and recorded in a
JSONL run manifest: one line per requested cell with its key, wall
clock, and whether it was a cache hit.

The simulations themselves are deterministic (all randomness flows from
seeded per-thread RNGs), so a cell computes bit-identically whether it
runs in-process, in a worker, or came from cache —
``tests/harness/test_determinism.py`` enforces exactly that for every
registered scheduler.

Crash safety: the pool path survives killed and wedged workers.  A cell
whose worker dies (SIGKILL, OOM) or exceeds ``cell_timeout_s`` is
retried on a **fresh** pool up to ``max_retries`` times with seeded
exponential backoff + jitter, each retry logged as an ``event: retry``
line in the manifest.  Cells that still fail are either raised
(``on_error="raise"``, the default) or *quarantined*
(``on_error="quarantine"``): the manifest records the full failing
``RunSpec`` — fault plan included — with outcome ``quarantined`` and
the sweep carries on, returning ``None`` for those cells.
Deterministic in-cell exceptions (a traceback from the workload itself)
are never retried; rerunning identical code on identical input cannot
help.
"""

from __future__ import annotations

import json
import math
import os
import random
import signal
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ..sched.stats import SchedStats
from .cache import ResultCache
from .registry import MACHINE_SPECS, SCHEDULERS, WORKLOADS
from .result import CellResult
from .spec import RunSpec

__all__ = [
    "ParallelRunner",
    "execute_spec",
    "default_jobs",
    "DEFAULT_MANIFEST_PATH",
]

DEFAULT_MANIFEST_PATH = Path("results") / "manifest.jsonl"

#: progress callback signature: (spec, result, cached)
ProgressFn = Callable[[RunSpec, CellResult, bool], None]


def default_jobs() -> int:
    """Worker-count auto-detection: one per *available* CPU (the
    affinity mask, where supported, not the machine's nominal count)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover — macOS/Windows
        return max(1, os.cpu_count() or 1)


#: Series granularity (timer ticks per bucket) for harness-driven
#: profiling; ``repro profile`` exposes it as ``--ticks``.
DEFAULT_PROFILE_TICKS = 100


def execute_spec(
    spec: RunSpec,
    profile: bool = False,
    profile_ticks: int = DEFAULT_PROFILE_TICKS,
    metrics: bool = False,
) -> CellResult:
    """Run one cell in this process and distil it to a CellResult.

    ``profile=True`` attaches a **fresh** :class:`~repro.prof.Profiler`
    for this cell only (never shared across cells — attribution state,
    like ``SchedStats``, must not leak between runs) and stores its
    JSON form on the result.  ``metrics=True`` does the same with a
    fresh :class:`~repro.obs.MetricsProbe`, stored as ``obs_metrics``.
    """
    workload = WORKLOADS[spec.workload]
    prof = None
    if profile:
        from ..prof.profiler import Profiler  # local import: layering

        prof = Profiler(bucket_ticks=profile_ticks)
    probe = None
    if metrics:
        from ..obs.metrics import MetricsProbe  # local import: layering

        probe = MetricsProbe()
    raw = workload.run(
        SCHEDULERS[spec.scheduler],
        MACHINE_SPECS[spec.machine],
        spec.build_config(),
        prof=prof,
        metrics=probe,
    )
    stats = raw.sim.stats
    return CellResult(
        spec_key=spec.key,
        workload=spec.workload,
        scheduler=spec.scheduler,
        machine=spec.machine,
        scheduler_name=raw.sim.scheduler_name,
        metrics=workload.extract(raw),
        stats={f: getattr(stats, f) for f in SchedStats.__dataclass_fields__},
        profile=prof.to_dict() if prof is not None else {},
        obs_metrics=probe.to_dict() if probe is not None else {},
    )


def _honour_worker_kill(spec: RunSpec) -> None:
    """Carry out a ``worker_kill`` fault: SIGKILL this pool worker, once.

    The fault's ``token`` marker file arms it — the first worker to pick
    the cell writes the marker and dies mid-cell; the retry finds the
    marker and runs clean.  Only the pool entry point calls this, so
    in-process (``jobs=1``) runs never self-destruct.
    """
    text = spec.config_dict.get("fault_plan") or ""
    if not text or "worker_kill" not in text:
        return
    from ..faults import FaultPlan  # local import: layering

    for fault in FaultPlan.from_config(text).harness_faults():
        if fault.kind == "worker_kill" and fault.token:
            marker = Path(fault.token)
            if not marker.exists():
                marker.parent.mkdir(parents=True, exist_ok=True)
                marker.write_text("armed\n", encoding="utf-8")
                os.kill(os.getpid(), signal.SIGKILL)


def _execute_payload(
    payload: str,
    profile: bool = False,
    profile_ticks: int = DEFAULT_PROFILE_TICKS,
    metrics: bool = False,
) -> tuple[str, dict, float, str]:
    """Pool worker entry point: canonical-JSON spec in, result dict out.

    Exceptions are returned as formatted tracebacks rather than raised,
    so one bad cell doesn't poison the pool and the parent can attribute
    the failure to its spec in the manifest.
    """
    spec = RunSpec.from_json(payload)
    _honour_worker_kill(spec)
    start = time.perf_counter()
    try:
        result = execute_spec(
            spec, profile=profile, profile_ticks=profile_ticks, metrics=metrics
        )
        return spec.key, result.to_dict(), time.perf_counter() - start, ""
    except Exception:  # noqa: BLE001 — reported via the manifest
        return spec.key, {}, time.perf_counter() - start, traceback.format_exc()


class ParallelRunner:
    """Run cells through a pool (or serially), cache-aware.

    ``jobs``
        ``None`` or ``0`` auto-detects (:func:`default_jobs`); ``1``
        runs every cell in-process with no pool — the reference serial
        mode the conformance tests compare against.
    ``cache``
        a :class:`ResultCache` or ``None`` to disable on-disk caching.
    ``manifest_path``
        JSONL file appended with one record per requested cell;
        ``None`` disables the manifest.
    ``profile``
        attach a fresh cycle-attribution profiler to every computed
        cell; cached entries without a profile count as misses (the
        profiled recompute overwrites them with a superset entry).
    ``metrics``
        attach a fresh :class:`~repro.obs.MetricsProbe` to every
        computed cell; same superset-miss cache semantics as
        ``profile``, stored as ``CellResult.obs_metrics``.
    ``max_retries``
        pool rounds to re-attempt cells whose worker died or timed out
        (deterministic in-cell failures are never retried).
    ``backoff_base_s`` / ``backoff_jitter``
        retry delay: ``base * 2**(attempt-1)``, stretched by up to
        ``jitter`` fractionally (seeded, so sweeps stay reproducible).
    ``cell_timeout_s``
        wall-clock budget per cell; a pool round is given
        ``ceil(cells / workers)`` budgets, after which its unfinished
        workers are killed and their cells retried.  ``None`` disables.
    ``on_error``
        ``"raise"`` aborts after the manifest is written (the historical
        behaviour); ``"quarantine"`` records each failed cell — full
        ``RunSpec`` included — in the manifest and returns ``None`` in
        its result slot instead of raising.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        manifest_path: Union[str, Path, None] = DEFAULT_MANIFEST_PATH,
        progress: Optional[ProgressFn] = None,
        profile: bool = False,
        profile_ticks: int = DEFAULT_PROFILE_TICKS,
        metrics: bool = False,
        max_retries: int = 2,
        backoff_base_s: float = 0.25,
        backoff_jitter: float = 0.25,
        cell_timeout_s: Optional[float] = None,
        on_error: str = "raise",
    ) -> None:
        self.jobs = jobs if jobs else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if on_error not in ("raise", "quarantine"):
            raise ValueError(f"on_error must be raise|quarantine, got {on_error}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.cache = cache
        self.manifest_path = Path(manifest_path) if manifest_path else None
        self.progress = progress
        self.profile = profile
        self.profile_ticks = profile_ticks
        self.metrics = metrics
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_jitter = backoff_jitter
        self.cell_timeout_s = cell_timeout_s
        self.on_error = on_error

    def run(self, specs: Sequence[RunSpec]) -> list[Optional[CellResult]]:
        """Compute every spec; results align with ``specs`` by index.

        Slots are ``None`` only under ``on_error="quarantine"`` for
        cells that failed every attempt.
        """
        specs = list(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)

        results: dict[str, CellResult] = {}
        durations: dict[str, float] = {}
        errors: dict[str, str] = {}
        attempts: dict[str, int] = {}
        retry_events: list[dict] = []
        from_cache: set[str] = set()

        if self.cache is not None:
            for key, spec in unique.items():
                hit = self.cache.get(
                    spec,
                    require_profile=self.profile,
                    require_metrics=self.metrics,
                )
                if hit is not None:
                    results[key] = hit
                    durations[key] = 0.0
                    from_cache.add(key)
                    self._notify(spec, hit, cached=True)

        misses = [s for k, s in unique.items() if k not in results]
        if misses:
            self._compute(misses, results, durations, errors, attempts, retry_events)
            if self.cache is not None:
                for spec in misses:
                    if spec.key in results:
                        self.cache.put(spec, results[spec.key])

        self._write_manifest(
            specs, results, durations, errors, from_cache, attempts, retry_events
        )

        if errors and self.on_error == "raise":
            first = next(iter(errors.values()))
            raise RuntimeError(
                f"{len(errors)} of {len(unique)} cells failed; "
                f"first failure:\n{first}"
            )
        return [results.get(spec.key) for spec in specs]

    def run_one(self, spec: RunSpec) -> CellResult:
        return self.run([spec])[0]

    # -- internals ---------------------------------------------------------

    def _notify(self, spec: RunSpec, result: CellResult, cached: bool) -> None:
        if self.progress is not None:
            self.progress(spec, result, cached)

    def _compute(
        self,
        misses: Sequence[RunSpec],
        results: dict[str, CellResult],
        durations: dict[str, float],
        errors: dict[str, str],
        attempts: dict[str, int],
        retry_events: list[dict],
    ) -> None:
        if self.jobs == 1 or len(misses) == 1:
            for spec in misses:
                attempts[spec.key] = 1
                start = time.perf_counter()
                try:
                    result = execute_spec(
                        spec,
                        profile=self.profile,
                        profile_ticks=self.profile_ticks,
                        metrics=self.metrics,
                    )
                except Exception:  # noqa: BLE001 — surfaced after manifest
                    errors[spec.key] = traceback.format_exc()
                else:
                    results[spec.key] = result
                    self._notify(spec, result, cached=False)
                durations[spec.key] = time.perf_counter() - start
            return

        # Pool path: rounds of fresh pools until every cell resolves or
        # the retry budget is spent.  A fresh pool per round matters — a
        # SIGKILLed worker breaks its ProcessPoolExecutor for good.
        pending = list(misses)
        rng = random.Random("harness-backoff")
        attempt = 1
        while pending:
            for spec in pending:
                attempts[spec.key] = attempt
            failures = self._pool_round(pending, results, durations, errors)
            if not failures:
                return
            if attempt > self.max_retries:
                for spec, reason in failures:
                    errors[spec.key] = (
                        f"cell failed after {attempt} attempt(s): {reason}"
                    )
                return
            delay = self.backoff_base_s * (2 ** (attempt - 1))
            delay *= 1.0 + self.backoff_jitter * rng.random()
            retry_events.append(
                {
                    "event": "retry",
                    "ts": round(time.time(), 3),
                    "attempt": attempt,
                    "backoff_s": round(delay, 3),
                    "keys": [spec.key for spec, _ in failures],
                    "reasons": sorted({reason for _, reason in failures}),
                    "jobs": self.jobs,
                }
            )
            time.sleep(delay)
            pending = [spec for spec, _ in failures]
            attempt += 1

    def _pool_round(
        self,
        specs: Sequence[RunSpec],
        results: dict[str, CellResult],
        durations: dict[str, float],
        errors: dict[str, str],
    ) -> list[tuple[RunSpec, str]]:
        """One pool pass; returns the cells that need another attempt."""
        workers = min(self.jobs, len(specs))
        failures: list[tuple[RunSpec, str]] = []
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                pool.submit(
                    _execute_payload,
                    spec.canonical(),
                    self.profile,
                    self.profile_ticks,
                    self.metrics,
                ): spec
                for spec in specs
            }
            timeout = None
            if self.cell_timeout_s:
                timeout = self.cell_timeout_s * math.ceil(len(specs) / workers)
            done, not_done = wait(set(futures), timeout=timeout)
            for future in done:
                spec = futures[future]
                try:
                    key, data, wall, error = future.result()
                except Exception as exc:  # noqa: BLE001 — worker died
                    # BrokenProcessPool (SIGKILL, OOM): retryable — the
                    # failure came from the process, not the cell.
                    failures.append(
                        (spec, f"worker died ({type(exc).__name__})")
                    )
                    continue
                durations[key] = wall
                if error:
                    errors[key] = error  # deterministic: retry can't help
                else:
                    result = CellResult.from_dict(data)
                    results[key] = result
                    self._notify(spec, result, cached=False)
            if not_done:
                # Wedged workers: cancel what we can, kill the rest, and
                # mark every unfinished cell for retry.
                for future in not_done:
                    future.cancel()
                    failures.append((futures[future], "cell timed out"))
                for proc in list((pool._processes or {}).values()):
                    proc.kill()
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        return failures

    def _write_manifest(
        self,
        specs: Sequence[RunSpec],
        results: dict[str, CellResult],
        durations: dict[str, float],
        errors: dict[str, str],
        from_cache: set[str],
        attempts: dict[str, int],
        retry_events: list[dict],
    ) -> None:
        if self.manifest_path is None or not specs:
            return
        self.manifest_path.parent.mkdir(parents=True, exist_ok=True)
        now = time.time()
        with open(self.manifest_path, "a", encoding="utf-8") as handle:
            for event in retry_events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
            for spec in specs:
                if spec.key in errors:
                    outcome = (
                        "quarantined" if self.on_error == "quarantine" else "error"
                    )
                else:
                    outcome = "ok"
                record = {
                    "ts": round(now, 3),
                    "key": spec.key,
                    "workload": spec.workload,
                    "scheduler": spec.scheduler,
                    "machine": spec.machine,
                    "cached": spec.key in from_cache,
                    "wall_seconds": round(durations.get(spec.key, 0.0), 6),
                    "outcome": outcome,
                    "jobs": self.jobs,
                }
                if attempts.get(spec.key, 1) > 1:
                    record["attempts"] = attempts[spec.key]
                if outcome == "quarantined":
                    # The full failing spec — fault plan included — so a
                    # quarantined cell can be replayed verbatim.
                    record["spec"] = spec.to_dict()
                    record["error"] = errors[spec.key].strip().splitlines()[-1]
                handle.write(json.dumps(record, sort_keys=True) + "\n")
