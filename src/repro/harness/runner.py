"""Fan experiment cells across a process pool, deterministically.

:class:`ParallelRunner` takes a sequence of :class:`RunSpec`\\ s and
returns one :class:`CellResult` per spec **in input order**, however the
pool happens to finish them.  Each unique spec is computed at most once
per call (duplicates are served from the in-memory round), consulted
against the on-disk :class:`ResultCache` first, and recorded in a
JSONL run manifest: one line per requested cell with its key, wall
clock, and whether it was a cache hit.

The simulations themselves are deterministic (all randomness flows from
seeded per-thread RNGs), so a cell computes bit-identically whether it
runs in-process, in a worker, or came from cache —
``tests/harness/test_determinism.py`` enforces exactly that for every
registered scheduler.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ..sched.stats import SchedStats
from .cache import ResultCache
from .registry import MACHINE_SPECS, SCHEDULERS, WORKLOADS
from .result import CellResult
from .spec import RunSpec

__all__ = [
    "ParallelRunner",
    "execute_spec",
    "default_jobs",
    "DEFAULT_MANIFEST_PATH",
]

DEFAULT_MANIFEST_PATH = Path("results") / "manifest.jsonl"

#: progress callback signature: (spec, result, cached)
ProgressFn = Callable[[RunSpec, CellResult, bool], None]


def default_jobs() -> int:
    """Worker-count auto-detection: one per *available* CPU (the
    affinity mask, where supported, not the machine's nominal count)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover — macOS/Windows
        return max(1, os.cpu_count() or 1)


#: Series granularity (timer ticks per bucket) for harness-driven
#: profiling; ``repro profile`` exposes it as ``--ticks``.
DEFAULT_PROFILE_TICKS = 100


def execute_spec(
    spec: RunSpec,
    profile: bool = False,
    profile_ticks: int = DEFAULT_PROFILE_TICKS,
) -> CellResult:
    """Run one cell in this process and distil it to a CellResult.

    ``profile=True`` attaches a **fresh** :class:`~repro.prof.Profiler`
    for this cell only (never shared across cells — attribution state,
    like ``SchedStats``, must not leak between runs) and stores its
    JSON form on the result.
    """
    workload = WORKLOADS[spec.workload]
    prof = None
    if profile:
        from ..prof.profiler import Profiler  # local import: layering

        prof = Profiler(bucket_ticks=profile_ticks)
    raw = workload.run(
        SCHEDULERS[spec.scheduler],
        MACHINE_SPECS[spec.machine],
        spec.build_config(),
        prof=prof,
    )
    stats = raw.sim.stats
    return CellResult(
        spec_key=spec.key,
        workload=spec.workload,
        scheduler=spec.scheduler,
        machine=spec.machine,
        scheduler_name=raw.sim.scheduler_name,
        metrics=workload.extract(raw),
        stats={f: getattr(stats, f) for f in SchedStats.__dataclass_fields__},
        profile=prof.to_dict() if prof is not None else {},
    )


def _execute_payload(
    payload: str, profile: bool = False, profile_ticks: int = DEFAULT_PROFILE_TICKS
) -> tuple[str, dict, float, str]:
    """Pool worker entry point: canonical-JSON spec in, result dict out.

    Exceptions are returned as formatted tracebacks rather than raised,
    so one bad cell doesn't poison the pool and the parent can attribute
    the failure to its spec in the manifest.
    """
    spec = RunSpec.from_json(payload)
    start = time.perf_counter()
    try:
        result = execute_spec(spec, profile=profile, profile_ticks=profile_ticks)
        return spec.key, result.to_dict(), time.perf_counter() - start, ""
    except Exception:  # noqa: BLE001 — reported via the manifest
        return spec.key, {}, time.perf_counter() - start, traceback.format_exc()


class ParallelRunner:
    """Run cells through a pool (or serially), cache-aware.

    ``jobs``
        ``None`` or ``0`` auto-detects (:func:`default_jobs`); ``1``
        runs every cell in-process with no pool — the reference serial
        mode the conformance tests compare against.
    ``cache``
        a :class:`ResultCache` or ``None`` to disable on-disk caching.
    ``manifest_path``
        JSONL file appended with one record per requested cell;
        ``None`` disables the manifest.
    ``profile``
        attach a fresh cycle-attribution profiler to every computed
        cell; cached entries without a profile count as misses (the
        profiled recompute overwrites them with a superset entry).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        manifest_path: Union[str, Path, None] = DEFAULT_MANIFEST_PATH,
        progress: Optional[ProgressFn] = None,
        profile: bool = False,
        profile_ticks: int = DEFAULT_PROFILE_TICKS,
    ) -> None:
        self.jobs = jobs if jobs else default_jobs()
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.cache = cache
        self.manifest_path = Path(manifest_path) if manifest_path else None
        self.progress = progress
        self.profile = profile
        self.profile_ticks = profile_ticks

    def run(self, specs: Sequence[RunSpec]) -> list[CellResult]:
        """Compute every spec; results align with ``specs`` by index."""
        specs = list(specs)
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)

        results: dict[str, CellResult] = {}
        durations: dict[str, float] = {}
        errors: dict[str, str] = {}
        from_cache: set[str] = set()

        if self.cache is not None:
            for key, spec in unique.items():
                hit = self.cache.get(spec, require_profile=self.profile)
                if hit is not None:
                    results[key] = hit
                    durations[key] = 0.0
                    from_cache.add(key)
                    self._notify(spec, hit, cached=True)

        misses = [s for k, s in unique.items() if k not in results]
        if misses:
            self._compute(misses, results, durations, errors)
            if self.cache is not None:
                for spec in misses:
                    if spec.key in results:
                        self.cache.put(spec, results[spec.key])

        self._write_manifest(specs, results, durations, errors, from_cache)

        if errors:
            first = next(iter(errors.values()))
            raise RuntimeError(
                f"{len(errors)} of {len(unique)} cells failed; "
                f"first failure:\n{first}"
            )
        return [results[spec.key] for spec in specs]

    def run_one(self, spec: RunSpec) -> CellResult:
        return self.run([spec])[0]

    # -- internals ---------------------------------------------------------

    def _notify(self, spec: RunSpec, result: CellResult, cached: bool) -> None:
        if self.progress is not None:
            self.progress(spec, result, cached)

    def _compute(
        self,
        misses: Sequence[RunSpec],
        results: dict[str, CellResult],
        durations: dict[str, float],
        errors: dict[str, str],
    ) -> None:
        by_key = {spec.key: spec for spec in misses}
        if self.jobs == 1 or len(misses) == 1:
            for spec in misses:
                start = time.perf_counter()
                try:
                    result = execute_spec(
                        spec,
                        profile=self.profile,
                        profile_ticks=self.profile_ticks,
                    )
                except Exception:  # noqa: BLE001 — surfaced after manifest
                    errors[spec.key] = traceback.format_exc()
                else:
                    results[spec.key] = result
                    self._notify(spec, result, cached=False)
                durations[spec.key] = time.perf_counter() - start
            return
        workers = min(self.jobs, len(misses))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _execute_payload,
                    spec.canonical(),
                    self.profile,
                    self.profile_ticks,
                )
                for spec in misses
            ]
            for future in as_completed(futures):
                key, data, wall, error = future.result()
                durations[key] = wall
                if error:
                    errors[key] = error
                else:
                    result = CellResult.from_dict(data)
                    results[key] = result
                    self._notify(by_key[key], result, cached=False)

    def _write_manifest(
        self,
        specs: Sequence[RunSpec],
        results: dict[str, CellResult],
        durations: dict[str, float],
        errors: dict[str, str],
        from_cache: set[str],
    ) -> None:
        if self.manifest_path is None or not specs:
            return
        self.manifest_path.parent.mkdir(parents=True, exist_ok=True)
        now = time.time()
        with open(self.manifest_path, "a", encoding="utf-8") as handle:
            for spec in specs:
                record = {
                    "ts": round(now, 3),
                    "key": spec.key,
                    "workload": spec.workload,
                    "scheduler": spec.scheduler,
                    "machine": spec.machine,
                    "cached": spec.key in from_cache,
                    "wall_seconds": round(durations.get(spec.key, 0.0), 6),
                    "outcome": "error" if spec.key in errors else "ok",
                    "jobs": self.jobs,
                }
                handle.write(json.dumps(record, sort_keys=True) + "\n")
