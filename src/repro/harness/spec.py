"""Canonical identity for one experiment cell.

A :class:`RunSpec` names a (workload, scheduler, machine spec, workload
config) tuple and gives it a *content address*: the config overrides are
normalised through the workload's config dataclass (so defaults are
filled in and unknown fields rejected), serialised as sorted-key JSON,
and hashed with SHA-256.  Two specs that describe the same simulation —
regardless of field order or whether a default was spelled out — hash
identically, which is what makes the on-disk result cache safe.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Mapping, Tuple, Union

from .registry import MACHINE_SPECS, SCHEDULERS, WORKLOADS

__all__ = ["RunSpec"]

_SCALARS = (bool, int, float, str, type(None))

ConfigLike = Union[Mapping[str, Any], Iterable[Tuple[str, Any]]]


def _jsonable(value: Any) -> Any:
    """Normalise a config value to JSON-stable form (tuples → lists)."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    raise TypeError(
        f"config value {value!r} ({type(value).__name__}) is not "
        "JSON-serialisable; RunSpec configs hold scalars and lists only"
    )


def _normalize_config(workload: str, config: ConfigLike) -> tuple:
    """Fill defaults via the workload's config class; sort the fields.

    Returns a sorted tuple of (name, value) pairs so the frozen
    dataclass stays hashable and order-insensitive.
    """
    overrides = dict(config)
    instance = WORKLOADS[workload].config_cls(**overrides)
    complete = {k: _jsonable(v) for k, v in asdict(instance).items()}
    return tuple(sorted(complete.items()))


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment sweep, content-addressable.

    ``config`` accepts any mapping of workload-config overrides; it is
    normalised (defaults filled, fields sorted) at construction, so
    equality and :attr:`key` ignore field order and spelled-out
    defaults.
    """

    workload: str
    scheduler: str
    machine: str
    config: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"choose from {sorted(WORKLOADS)}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(SCHEDULERS)}"
            )
        if self.machine not in MACHINE_SPECS:
            raise ValueError(
                f"unknown machine spec {self.machine!r}; "
                f"choose from {list(MACHINE_SPECS)}"
            )
        object.__setattr__(
            self, "config", _normalize_config(self.workload, self.config)
        )

    # -- identity ----------------------------------------------------------

    @property
    def config_dict(self) -> dict[str, Any]:
        return dict(self.config)

    def canonical(self) -> str:
        """The canonical JSON form — the string that gets hashed, and
        the wire format workers receive."""
        return json.dumps(
            {
                "workload": self.workload,
                "scheduler": self.scheduler,
                "machine": self.machine,
                "config": self.config_dict,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def key(self) -> str:
        """SHA-256 of the canonical form: the cache address."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable cell name for logs and manifests."""
        return f"{self.workload}/{self.scheduler}-{self.machine}"

    # -- construction helpers ----------------------------------------------

    def build_config(self) -> Any:
        """Instantiate the workload's config dataclass for this cell."""
        return WORKLOADS[self.workload].config_cls(**self.config_dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "scheduler": self.scheduler,
            "machine": self.machine,
            "config": self.config_dict,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "RunSpec":
        return RunSpec(
            workload=data["workload"],
            scheduler=data["scheduler"],
            machine=data["machine"],
            config=dict(data.get("config", {})),
        )

    @staticmethod
    def from_json(payload: str) -> "RunSpec":
        return RunSpec.from_dict(json.loads(payload))

    def __repr__(self) -> str:
        return f"<RunSpec {self.label} {self.key[:12]}>"
