"""The experiment axes, by name.

The harness addresses every cell of a sweep with three strings — a
workload, a scheduler, a machine spec — plus a config-override mapping.
This module is the single place those names are defined; ``repro.cli``
re-exports :data:`SCHEDULERS` and :data:`MACHINE_SPECS` so the CLI and
the harness can never disagree about what ``"elsc"`` or ``"2P"`` means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..kernel.simulator import MachineSpec
from ..sched.base import Scheduler
from ..sched.registry import all_schedulers, alias_map
from ..sched.registry import resolve as _resolve_scheduler
from ..serve.config import ServeConfig
from ..serve.workload import run_serve_loadtest
from ..workloads.kernbench import KernbenchConfig, run_kernbench
from ..workloads.volanomark import VolanoConfig, run_volanomark
from ..workloads.volanoselect import run_select_chat
from ..workloads.webserver import WebServerConfig, run_webserver

__all__ = [
    "SCHEDULERS",
    "SCHEDULER_ALIASES",
    "MACHINE_SPECS",
    "WORKLOADS",
    "WORKLOAD_ALIASES",
    "WorkloadDef",
    "resolve_scheduler",
    "resolve_workload",
]

#: Canonical name -> factory, derived from the single scheduler
#: registry (:mod:`repro.sched.registry`).  Kept as a plain dict so
#: every existing ``SCHEDULERS[name]()`` / ``sorted(SCHEDULERS)``
#: call site keeps working; new schedulers appear here the moment
#: their module registers them.
SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    name: info.factory for name, info in all_schedulers().items()
}

#: Paper-facing synonyms accepted anywhere a scheduler is named —
#: also derived from the registry (declared by each scheduler's
#: ``@register_scheduler(aliases=...)`` line, not here).
SCHEDULER_ALIASES: dict[str, str] = alias_map()


def resolve_scheduler(name: str) -> str:
    """Canonical scheduler name for ``name`` (aliases resolved).

    Entries injected straight into :data:`SCHEDULERS` (the fuzz
    suite's throwaway policies do this) are honoured first; everything
    else delegates to :func:`repro.sched.registry.resolve`, which
    raises ``KeyError`` with the full vocabulary for an unknown name.
    """
    if name in SCHEDULERS:
        return name
    return _resolve_scheduler(name)


MACHINE_SPECS: dict[str, MachineSpec] = {
    "UP": MachineSpec.up(),
    "1P": MachineSpec.smp_n(1),
    "2P": MachineSpec.smp_n(2),
    "4P": MachineSpec.smp_n(4),
    "8P": MachineSpec.smp_n(8),
}


@dataclass(frozen=True)
class WorkloadDef:
    """One runnable workload: its config class, entry point, and the
    scalar metrics its result contributes to a :class:`CellResult`."""

    name: str
    config_cls: type
    run: Callable[..., Any]
    extract: Callable[[Any], dict[str, Any]]


def _extract_volano(result: Any) -> dict[str, Any]:
    return {
        "throughput": result.throughput,
        "messages_delivered": result.messages_delivered,
        "elapsed_seconds": result.elapsed_seconds,
        "scheduler_fraction": result.scheduler_fraction,
    }


def _extract_select_chat(result: Any) -> dict[str, Any]:
    return {
        "throughput": result.throughput,
        "messages_delivered": result.messages_delivered,
        "elapsed_seconds": result.elapsed_seconds,
        "scheduler_fraction": result.scheduler_fraction,
        "threads": result.threads,
    }


def _extract_kernbench(result: Any) -> dict[str, Any]:
    return {
        "elapsed_seconds": result.elapsed_seconds,
        "scheduler_fraction": result.scheduler_fraction,
    }


def _extract_webserver(result: Any) -> dict[str, Any]:
    return {
        "throughput": result.throughput,
        "requests_done": result.requests_done,
        "elapsed_seconds": result.elapsed_seconds,
        "mean_latency_seconds": result.mean_latency_seconds,
        "p99_latency_seconds": result.p99_latency_seconds,
        "scheduler_fraction": result.scheduler_fraction,
    }


def _extract_serve(result: Any) -> dict[str, Any]:
    # The live workload computes its own scalar export (it has far more
    # dimensions than the simulated ones: latency percentiles, pick
    # latency, queue depth, shedding).
    return result.metrics()


#: Paper-facing synonyms accepted anywhere a workload is named (the
#: paper says "VolanoMark"; the canonical axis says "volano").
WORKLOAD_ALIASES: dict[str, str] = {
    "volanomark": "volano",
    "select": "select-chat",
    "loadtest": "serve",
}


def resolve_workload(name: str) -> str:
    """Canonical workload name for ``name`` (aliases resolved).

    Raises ``KeyError`` with the full vocabulary for an unknown name.
    """
    canonical = WORKLOAD_ALIASES.get(name, name)
    if canonical not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS) + sorted(WORKLOAD_ALIASES)}"
        )
    return canonical


WORKLOADS: dict[str, WorkloadDef] = {
    "volano": WorkloadDef("volano", VolanoConfig, run_volanomark, _extract_volano),
    "select-chat": WorkloadDef(
        "select-chat", VolanoConfig, run_select_chat, _extract_select_chat
    ),
    "kernbench": WorkloadDef(
        "kernbench", KernbenchConfig, run_kernbench, _extract_kernbench
    ),
    "webserver": WorkloadDef(
        "webserver", WebServerConfig, run_webserver, _extract_webserver
    ),
    "serve": WorkloadDef(
        "serve", ServeConfig, run_serve_loadtest, _extract_serve
    ),
}
