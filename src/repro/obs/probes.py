"""Adapters rebasing the legacy observers onto the probe pipeline.

:class:`TracerProbe` and :class:`ProfilerProbe` translate pipeline
events into exactly the ``Tracer.record`` / ``ProfSink.charge`` calls
the machine used to make inline, so a trace ring or profile taken
through the pipeline is bit-identical to one taken on the pre-pipeline
code (pinned by ``tests/obs/test_pipeline_identity.py``).  The wrapped
objects stay the public artifact: ``machine.attach_tracer()`` still
hands back a :class:`~repro.kernel.trace.Tracer`, and
``machine.attach_profiler()`` a :class:`~repro.prof.profiler.Profiler`
— the adapters are plumbing, not API.
"""

from __future__ import annotations

from typing import Any, Optional

from .probe import Probe, SchedEvent

__all__ = ["TracerProbe", "ProfilerProbe"]


class TracerProbe(Probe):
    """Feeds a :class:`~repro.kernel.trace.Tracer` ring from the pipeline."""

    kinds = frozenset({"sched", "wakeup", "syscall"})

    #: Syscall ``op`` → trace kind, resolved lazily to keep this module
    #: importable before ``repro.kernel.trace`` in partial-init chains.
    _SYSCALL_KINDS: Optional[dict] = None

    def __init__(self, tracer: Any = None) -> None:
        if tracer is None:
            from ..kernel.trace import Tracer

            tracer = Tracer()
        self.tracer = tracer

    def on_wakeup(self, ev: Any) -> None:
        from ..kernel.trace import TraceKind

        self.tracer.record(ev.t, TraceKind.WAKEUP, ev.cpu, ev.task)

    def on_sched(self, ev: Any) -> None:
        from ..kernel.trace import TraceKind

        point = ev.point
        if point == "decision":
            if ev.chosen is None:
                self.tracer.record(ev.end, TraceKind.IDLE, ev.cpu, None)
                return
            if ev.migrated_from is not None:
                self.tracer.record(
                    ev.end,
                    TraceKind.MIGRATE,
                    ev.cpu,
                    ev.chosen,
                    f"from cpu{ev.migrated_from}",
                )
            self.tracer.record(
                ev.end,
                TraceKind.DISPATCH,
                ev.cpu,
                ev.chosen,
                f"examined={ev.examined} prev={ev.prev.name}",
            )
        elif point == "preempt":
            self.tracer.record(
                ev.t, TraceKind.PREEMPT, ev.cpu, ev.task, f"counter={ev.counter}"
            )
        elif point == "recalc":
            self.tracer.record(
                ev.t, TraceKind.RECALC, -1, None, f"tasks={ev.tasks}"
            )

    def on_syscall(self, ev: Any) -> None:
        from ..kernel.trace import TraceKind

        kinds = TracerProbe._SYSCALL_KINDS
        if kinds is None:
            kinds = TracerProbe._SYSCALL_KINDS = {
                "block": TraceKind.BLOCK,
                "yield": TraceKind.YIELD,
                "exit": TraceKind.EXIT,
            }
        self.tracer.record(ev.t, kinds[ev.op], ev.cpu, ev.task, ev.detail)


class ProfilerProbe(Probe):
    """Feeds a ``ProfSink`` (usually a Profiler) from the pipeline.

    The charge schedule reproduces the old inline hooks exactly:
    lock-wait at event time, lock-hold and the pick/goodness/recalc
    split at lock acquisition, the context switch at decision end, the
    wakeup charge after any wakeup-path spin, and the cache refill when
    a migrated task lands.
    """

    kinds = frozenset({"sched", "wakeup", "dispatch", "lock"})

    def __init__(self, sink: Any = None) -> None:
        if sink is None:
            from ..prof.profiler import Profiler

            sink = Profiler()
        self.sink = sink

    def set_scheduler(self, name: str) -> None:
        set_sched = getattr(self.sink, "set_scheduler", None)
        if set_sched is not None:
            set_sched(name)

    def on_lock(self, ev: Any) -> None:
        if ev.spin:
            self.sink.charge("lock_wait", ev.spin, ev.t, ev.cpu, ev.task)
        if ev.hold:
            self.sink.charge("lock_hold", ev.hold, ev.t + ev.spin, ev.cpu, ev.task)

    def on_wakeup(self, ev: Any) -> None:
        self.sink.charge("wakeup", ev.charge, ev.t + ev.spin, ev.charge_cpu, ev.task)

    def on_sched(self, ev: Any) -> None:
        if ev.point != "decision":
            return
        sink = self.sink
        eval_c = ev.eval_cycles
        recalc_c = ev.recalc_cycles
        sink.charge("pick", ev.cost - eval_c - recalc_c, ev.start, ev.cpu, ev.target)
        if eval_c:
            sink.charge("goodness_eval", eval_c, ev.start, ev.cpu, ev.target)
        if recalc_c:
            sink.charge("recalc", recalc_c, ev.start, ev.cpu, ev.target)
        if ev.switch:
            sink.charge("dispatch", ev.switch, ev.dec_end, ev.cpu, ev.target)

    def on_dispatch(self, ev: Any) -> None:
        self.sink.charge("migrate", ev.cycles, ev.t, ev.cpu, ev.task)
