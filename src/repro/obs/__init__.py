"""repro.obs — the unified observability layer.

One probe pipeline replaces the machine's three historical bolt-on
observers (tracer / profiler / fault injector).  ``probe`` defines the
protocol and events, ``probes`` the adapters rebasing the legacy
observers onto it, ``metrics`` the first pipeline-native observer.

See ``docs/observability.md``.
"""

# Import order matters: ``.probe`` is dependency-free and must land in
# sys.modules first so the kernel (and the adapters below, which import
# kernel/prof modules lazily) can import it mid-initialisation without
# cycles.
from .probe import (  # noqa: F401
    KINDS,
    DispatchEvent,
    FaultEvent,
    LockEvent,
    PreemptEvent,
    Probe,
    ProbeSet,
    RecalcEvent,
    SchedEvent,
    SyscallEvent,
    WakeupEvent,
)
from .probes import ProfilerProbe, TracerProbe  # noqa: F401
from .metrics import (  # noqa: F401
    MetricsProbe,
    format_metrics,
    reconcile_with_stats,
)

__all__ = [
    "KINDS",
    "Probe",
    "ProbeSet",
    "SchedEvent",
    "PreemptEvent",
    "RecalcEvent",
    "WakeupEvent",
    "DispatchEvent",
    "LockEvent",
    "SyscallEvent",
    "FaultEvent",
    "TracerProbe",
    "ProfilerProbe",
    "MetricsProbe",
    "format_metrics",
    "reconcile_with_stats",
]
