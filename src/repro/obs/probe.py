"""The probe pipeline: one event stream for every observer.

Historically the machine carried three independent optional observers —
``tracer``, ``prof``, ``faults`` — each with its own attach method and
its own scatter of ``if self.X is not None`` guards through the hot
paths.  This module replaces all of that with a single mechanism:

* a :class:`Probe` subscribes to *event kinds* (``sched``, ``wakeup``,
  ``dispatch``, ``lock``, ``fault``, ``syscall``) by listing them in
  its ``kinds`` set and overriding the matching ``on_<kind>`` hook;
* a :class:`ProbeSet` holds the attached probes as one per-kind tuple
  each, so the emitting site's detached fast path is a single
  attribute-truthiness test (``if probes.sched:``) — the same cost the
  old per-observer ``is None`` guard paid, and an *empty* set is
  bit-identical to no observers at all;
* the :class:`~repro.kernel.machine.Machine` and
  :class:`~repro.serve.executor.SchedulerExecutor` emit each event from
  exactly one site, so a new observer never re-audits the hot path.

Delivery is *batched* for probes that opt in (``batch_capable = True``,
e.g. :class:`~repro.obs.metrics.MetricsProbe`): the emitting site calls
``probes.emit_<kind>(ev)``, which appends to a per-kind buffer and
drains it through the probe's ``on_<kind>_batch`` hook every
:data:`DEFAULT_BATCH_SIZE` events, amortising the per-event call
overhead into one hoisted-locals loop per batch.  Order is preserved
*within* a kind; batch-capable probes must therefore be
order-insensitive **across** kinds (aggregators are; the tracer's
cross-kind ring ordering is why :class:`~repro.obs.probes.TracerProbe`
stays synchronous).  ``ProbeSet.flush()`` drains every buffer; the
machine flushes at the end of :meth:`~repro.kernel.machine.Machine.run`
and a :class:`~repro.obs.metrics.MetricsProbe` self-flushes on every
read, so no observable snapshot ever sees a partial stream.

Events carry the *cycle charges* the machine computed, never re-derive
them: a probe that sums ``LockEvent.spin`` reconstructs
``SchedStats.lock_spin_cycles`` exactly, and the profiler adapter's
phase totals conserve against the machine's own ledger (pinned by
``tests/obs/``).

This module is deliberately dependency-free (events hold tasks as
opaque objects) so the kernel can import it without cycles.  See
``docs/observability.md`` for the protocol reference and a worked
custom-probe example.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "KINDS",
    "DEFAULT_BATCH_SIZE",
    "Probe",
    "ProbeSet",
    "SchedEvent",
    "PreemptEvent",
    "RecalcEvent",
    "WakeupEvent",
    "DispatchEvent",
    "LockEvent",
    "SyscallEvent",
    "FaultEvent",
]

#: The closed set of event kinds a probe may subscribe to.
KINDS = ("sched", "wakeup", "dispatch", "lock", "fault", "syscall")

#: Events buffered per kind before a batch-capable probe's
#: ``on_<kind>_batch`` hook drains them.  ``<= 1`` disables batching
#: (every probe is delivered synchronously) — the bench runner uses
#: that to measure the before/after of batched emission.
DEFAULT_BATCH_SIZE = 256


class SchedEvent:
    """One ``schedule()`` decision (``point == "decision"``).

    ``chosen`` is ``None`` for an idle pick; ``target`` is the task the
    CPU actually switches to (the idle task on idle picks).  Times:
    ``t`` is scheduler entry, ``start`` is lock acquisition (entry +
    spin), ``dec_end`` is decision completion, ``end`` adds the context
    switch.  ``migrated_from`` is the chosen task's previous CPU when
    this pick migrates it, else ``None``.
    """

    point = "decision"
    __slots__ = (
        "t",
        "start",
        "dec_end",
        "end",
        "cpu",
        "prev",
        "chosen",
        "target",
        "cost",
        "eval_cycles",
        "recalc_cycles",
        "examined",
        "switch",
        "migrated_from",
    )

    def __init__(
        self,
        t: int,
        start: int,
        dec_end: int,
        end: int,
        cpu: int,
        prev: Any,
        chosen: Optional[Any],
        target: Any,
        cost: int,
        eval_cycles: int,
        recalc_cycles: int,
        examined: int,
        switch: int,
        migrated_from: Optional[int],
    ) -> None:
        self.t = t
        self.start = start
        self.dec_end = dec_end
        self.end = end
        self.cpu = cpu
        self.prev = prev
        self.chosen = chosen
        self.target = target
        self.cost = cost
        self.eval_cycles = eval_cycles
        self.recalc_cycles = recalc_cycles
        self.examined = examined
        self.switch = switch
        self.migrated_from = migrated_from


class PreemptEvent:
    """``need_resched`` honoured against the running task (``sched`` kind)."""

    point = "preempt"
    __slots__ = ("t", "cpu", "task", "counter")

    def __init__(self, t: int, cpu: int, task: Any, counter: int) -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.counter = counter


class RecalcEvent:
    """A whole-system counter recalculation (``sched`` kind)."""

    point = "recalc"
    __slots__ = ("t", "tasks")

    def __init__(self, t: int, tasks: int) -> None:
        self.t = t
        self.tasks = tasks


class WakeupEvent:
    """``wake_up_process`` made a task runnable.

    ``cpu`` is the waking CPU id (-1: interrupt/timer context) and is
    what a tracer shows; ``charge_cpu`` is the CPU the cycle ``charge``
    (wakeup + runqueue insert) is attributed to, which the machine pins
    to 0 on a UP build.  ``spin`` is lock-wait time already reported via
    the separate :class:`LockEvent`; the wakeup charge lands at
    ``t + spin``.
    """

    __slots__ = ("t", "cpu", "charge_cpu", "task", "charge", "spin")

    def __init__(
        self, t: int, cpu: int, charge_cpu: int, task: Any, charge: int, spin: int
    ) -> None:
        self.t = t
        self.cpu = cpu
        self.charge_cpu = charge_cpu
        self.task = task
        self.charge = charge
        self.spin = spin


class DispatchEvent:
    """A migrated task landed on its new CPU and paid the cache refill."""

    __slots__ = ("t", "cpu", "task", "cycles")

    def __init__(self, t: int, cpu: int, task: Any, cycles: int) -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.cycles = cycles


class LockEvent:
    """One pass through the global runqueue lock: ``spin`` cycles waited
    from ``t``, then ``hold`` cycles held from ``t + spin``."""

    __slots__ = ("t", "cpu", "task", "spin", "hold")

    def __init__(self, t: int, cpu: int, task: Any, spin: int, hold: int) -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.spin = spin
        self.hold = hold


class SyscallEvent:
    """A task left the CPU through a syscall boundary.

    ``op`` is ``"block"``, ``"yield"`` or ``"exit"``; ``detail`` names
    the blocking primitive (``"put chan"``, ``"sleep"``, …).
    """

    __slots__ = ("t", "cpu", "task", "op", "detail")

    def __init__(self, t: int, cpu: int, task: Any, op: str, detail: str = "") -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.op = op
        self.detail = detail


class FaultEvent:
    """A fault injector fired (or skipped, or restored) one fault."""

    __slots__ = ("t", "kind", "target", "outcome", "detail")

    def __init__(
        self, t: int, kind: str, target: str, outcome: str, detail: str
    ) -> None:
        self.t = t
        self.kind = kind
        self.target = target
        self.outcome = outcome
        self.detail = detail


class Probe:
    """Base class for pipeline observers.

    Subclasses declare the kinds they want in ``kinds`` and override the
    matching ``on_<kind>`` hooks; everything else stays a no-op.  Probes
    observe — they must not mutate tasks, CPUs, or the clock (the fault
    injector, which *does* mutate, only ever does so from CALLBACK
    events it scheduled at attach time, never from an emission hook).
    """

    #: Event kinds this probe subscribes to (subset of :data:`KINDS`).
    kinds: frozenset = frozenset()

    #: Opt in to buffered delivery through the ``on_<kind>_batch``
    #: hooks.  Only safe for probes whose aggregates are insensitive to
    #: event ordering *across* kinds (within a kind, order is kept).
    batch_capable: bool = False

    def on_attach(self, host: Any) -> None:
        """Called once when attached to a machine or executor."""

    def set_scheduler(self, name: str) -> None:
        """The host's scheduler (re)bound; hot-swaps included."""

    def on_sched(self, ev: Any) -> None:
        """A :class:`SchedEvent`, :class:`PreemptEvent` or
        :class:`RecalcEvent` (discriminate on ``ev.point``)."""

    def on_wakeup(self, ev: WakeupEvent) -> None:
        """A :class:`WakeupEvent`."""

    def on_dispatch(self, ev: DispatchEvent) -> None:
        """A :class:`DispatchEvent`."""

    def on_lock(self, ev: LockEvent) -> None:
        """A :class:`LockEvent`."""

    def on_fault(self, ev: FaultEvent) -> None:
        """A :class:`FaultEvent`."""

    def on_syscall(self, ev: SyscallEvent) -> None:
        """A :class:`SyscallEvent`."""

    # -- batched delivery (batch_capable probes only) -----------------------
    #
    # The defaults just replay the per-event hooks, so a batch-capable
    # probe works before it bothers writing hoisted batch loops.

    def on_sched_batch(self, evs: list) -> None:
        for ev in evs:
            self.on_sched(ev)

    def on_wakeup_batch(self, evs: list) -> None:
        for ev in evs:
            self.on_wakeup(ev)

    def on_dispatch_batch(self, evs: list) -> None:
        for ev in evs:
            self.on_dispatch(ev)

    def on_lock_batch(self, evs: list) -> None:
        for ev in evs:
            self.on_lock(ev)

    def on_fault_batch(self, evs: list) -> None:
        for ev in evs:
            self.on_fault(ev)

    def on_syscall_batch(self, evs: list) -> None:
        for ev in evs:
            self.on_syscall(ev)


class ProbeSet:
    """The per-host pipeline: attached probes, indexed by event kind.

    Emitters test the kind attribute directly — ``if probes.sched:`` is
    the detached fast path (an empty set costs one truthiness test per
    potential event and allocates nothing) — then hand the event to
    ``emit_<kind>``, which delivers synchronously to order-sensitive
    probes and buffers for batch-capable ones.  The per-kind attributes
    keep *all* subscribers, so pre-batching code that iterates
    ``probes.sched`` itself still delivers to everything (just without
    the amortisation).
    """

    __slots__ = (
        ("probes", "batch_size") + KINDS
        + tuple(f"_sync_{k}" for k in KINDS)
        + tuple(f"_batch_{k}" for k in KINDS)
        + tuple(f"_buf_{k}" for k in KINDS)
    )

    def __init__(self, batch_size: Optional[int] = None) -> None:
        self.probes: tuple = ()
        self.batch_size = (
            DEFAULT_BATCH_SIZE if batch_size is None else batch_size
        )
        for kind in KINDS:
            setattr(self, kind, ())
            setattr(self, f"_sync_{kind}", ())
            setattr(self, f"_batch_{kind}", ())
            setattr(self, f"_buf_{kind}", [])

    def _rebuild(self) -> None:
        """Recompute the per-kind delivery tuples from ``self.probes``."""
        batching = self.batch_size > 1
        for kind in KINDS:
            subs = tuple(p for p in self.probes if kind in p.kinds)
            setattr(self, kind, subs)
            setattr(
                self,
                f"_sync_{kind}",
                tuple(
                    p for p in subs
                    if not (batching and getattr(p, "batch_capable", False))
                ),
            )
            setattr(
                self,
                f"_batch_{kind}",
                tuple(
                    p for p in subs
                    if batching and getattr(p, "batch_capable", False)
                ),
            )

    def add(self, probe: Probe) -> Probe:
        """Subscribe ``probe`` to its declared kinds (idempotent).

        Pending buffers are flushed first, so a late-attached probe
        never sees events emitted before it arrived.
        """
        if probe in self.probes:
            return probe
        for kind in probe.kinds:
            if kind not in KINDS:
                raise ValueError(
                    f"unknown probe kind {kind!r}; choose from {KINDS}"
                )
        self.flush()
        self.probes = self.probes + (probe,)
        self._rebuild()
        if getattr(probe, "_pipeline", _MISSING) is not _MISSING:
            probe._pipeline = self
        return probe

    def remove(self, probe: Probe) -> None:
        """Detach ``probe`` from every kind it subscribed to."""
        if probe not in self.probes:
            return
        self.flush()
        self.probes = tuple(p for p in self.probes if p is not probe)
        self._rebuild()
        if getattr(probe, "_pipeline", _MISSING) is not _MISSING:
            probe._pipeline = None

    def first(self, cls: type) -> Optional[Probe]:
        """The first attached probe of (a subclass of) ``cls``, or None."""
        for probe in self.probes:
            if isinstance(probe, cls):
                return probe
        return None

    def set_scheduler(self, name: str) -> None:
        """Tell every probe the host's scheduler (re)bound.

        Flushes first: buffered events belong to the *previous* binding
        (the MetricsProbe keys its per-scheduler breakdown on delivery).
        """
        self.flush()
        for probe in self.probes:
            probe.set_scheduler(name)

    # -- delivery -----------------------------------------------------------

    def emit_sched(self, ev: Any) -> None:
        for p in self._sync_sched:
            p.on_sched(ev)
        if self._batch_sched:
            buf = self._buf_sched
            buf.append(ev)
            if len(buf) >= self.batch_size:
                self._buf_sched = []
                for p in self._batch_sched:
                    p.on_sched_batch(buf)

    def emit_wakeup(self, ev: Any) -> None:
        for p in self._sync_wakeup:
            p.on_wakeup(ev)
        if self._batch_wakeup:
            buf = self._buf_wakeup
            buf.append(ev)
            if len(buf) >= self.batch_size:
                self._buf_wakeup = []
                for p in self._batch_wakeup:
                    p.on_wakeup_batch(buf)

    def emit_dispatch(self, ev: Any) -> None:
        for p in self._sync_dispatch:
            p.on_dispatch(ev)
        if self._batch_dispatch:
            buf = self._buf_dispatch
            buf.append(ev)
            if len(buf) >= self.batch_size:
                self._buf_dispatch = []
                for p in self._batch_dispatch:
                    p.on_dispatch_batch(buf)

    def emit_lock(self, ev: Any) -> None:
        for p in self._sync_lock:
            p.on_lock(ev)
        if self._batch_lock:
            buf = self._buf_lock
            buf.append(ev)
            if len(buf) >= self.batch_size:
                self._buf_lock = []
                for p in self._batch_lock:
                    p.on_lock_batch(buf)

    def emit_fault(self, ev: Any) -> None:
        for p in self._sync_fault:
            p.on_fault(ev)
        if self._batch_fault:
            buf = self._buf_fault
            buf.append(ev)
            if len(buf) >= self.batch_size:
                self._buf_fault = []
                for p in self._batch_fault:
                    p.on_fault_batch(buf)

    def emit_syscall(self, ev: Any) -> None:
        for p in self._sync_syscall:
            p.on_syscall(ev)
        if self._batch_syscall:
            buf = self._buf_syscall
            buf.append(ev)
            if len(buf) >= self.batch_size:
                self._buf_syscall = []
                for p in self._batch_syscall:
                    p.on_syscall_batch(buf)

    def flush(self) -> None:
        """Drain every per-kind buffer through the batch hooks.

        Hosts call this at read boundaries (end of a machine run, before
        a live metrics snapshot) so aggregates are exact, not
        approximately-current.  Buffers are swapped out before delivery,
        making the call re-entrancy-safe.
        """
        for kind in KINDS:
            buf = getattr(self, f"_buf_{kind}")
            if buf:
                setattr(self, f"_buf_{kind}", [])
                hook = f"on_{kind}_batch"
                for p in getattr(self, f"_batch_{kind}"):
                    getattr(p, hook)(buf)

    def pending(self) -> int:
        """Events currently buffered across all kinds (introspection)."""
        return sum(len(getattr(self, f"_buf_{k}")) for k in KINDS)

    def __bool__(self) -> bool:
        return bool(self.probes)

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self):
        return iter(self.probes)

    def __repr__(self) -> str:
        return f"<ProbeSet {[type(p).__name__ for p in self.probes]}>"


#: Sentinel distinguishing "no ``_pipeline`` attribute" from "None".
_MISSING = object()
