"""The probe pipeline: one event stream for every observer.

Historically the machine carried three independent optional observers —
``tracer``, ``prof``, ``faults`` — each with its own attach method and
its own scatter of ``if self.X is not None`` guards through the hot
paths.  This module replaces all of that with a single mechanism:

* a :class:`Probe` subscribes to *event kinds* (``sched``, ``wakeup``,
  ``dispatch``, ``lock``, ``fault``, ``syscall``) by listing them in
  its ``kinds`` set and overriding the matching ``on_<kind>`` hook;
* a :class:`ProbeSet` holds the attached probes as one per-kind tuple
  each, so the emitting site's detached fast path is a single
  attribute-truthiness test (``if probes.sched:``) — the same cost the
  old per-observer ``is None`` guard paid, and an *empty* set is
  bit-identical to no observers at all;
* the :class:`~repro.kernel.machine.Machine` and
  :class:`~repro.serve.executor.SchedulerExecutor` emit each event from
  exactly one site, so a new observer never re-audits the hot path.

Events carry the *cycle charges* the machine computed, never re-derive
them: a probe that sums ``LockEvent.spin`` reconstructs
``SchedStats.lock_spin_cycles`` exactly, and the profiler adapter's
phase totals conserve against the machine's own ledger (pinned by
``tests/obs/``).

This module is deliberately dependency-free (events hold tasks as
opaque objects) so the kernel can import it without cycles.  See
``docs/observability.md`` for the protocol reference and a worked
custom-probe example.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "KINDS",
    "Probe",
    "ProbeSet",
    "SchedEvent",
    "PreemptEvent",
    "RecalcEvent",
    "WakeupEvent",
    "DispatchEvent",
    "LockEvent",
    "SyscallEvent",
    "FaultEvent",
]

#: The closed set of event kinds a probe may subscribe to.
KINDS = ("sched", "wakeup", "dispatch", "lock", "fault", "syscall")


class SchedEvent:
    """One ``schedule()`` decision (``point == "decision"``).

    ``chosen`` is ``None`` for an idle pick; ``target`` is the task the
    CPU actually switches to (the idle task on idle picks).  Times:
    ``t`` is scheduler entry, ``start`` is lock acquisition (entry +
    spin), ``dec_end`` is decision completion, ``end`` adds the context
    switch.  ``migrated_from`` is the chosen task's previous CPU when
    this pick migrates it, else ``None``.
    """

    point = "decision"
    __slots__ = (
        "t",
        "start",
        "dec_end",
        "end",
        "cpu",
        "prev",
        "chosen",
        "target",
        "cost",
        "eval_cycles",
        "recalc_cycles",
        "examined",
        "switch",
        "migrated_from",
    )

    def __init__(
        self,
        t: int,
        start: int,
        dec_end: int,
        end: int,
        cpu: int,
        prev: Any,
        chosen: Optional[Any],
        target: Any,
        cost: int,
        eval_cycles: int,
        recalc_cycles: int,
        examined: int,
        switch: int,
        migrated_from: Optional[int],
    ) -> None:
        self.t = t
        self.start = start
        self.dec_end = dec_end
        self.end = end
        self.cpu = cpu
        self.prev = prev
        self.chosen = chosen
        self.target = target
        self.cost = cost
        self.eval_cycles = eval_cycles
        self.recalc_cycles = recalc_cycles
        self.examined = examined
        self.switch = switch
        self.migrated_from = migrated_from


class PreemptEvent:
    """``need_resched`` honoured against the running task (``sched`` kind)."""

    point = "preempt"
    __slots__ = ("t", "cpu", "task", "counter")

    def __init__(self, t: int, cpu: int, task: Any, counter: int) -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.counter = counter


class RecalcEvent:
    """A whole-system counter recalculation (``sched`` kind)."""

    point = "recalc"
    __slots__ = ("t", "tasks")

    def __init__(self, t: int, tasks: int) -> None:
        self.t = t
        self.tasks = tasks


class WakeupEvent:
    """``wake_up_process`` made a task runnable.

    ``cpu`` is the waking CPU id (-1: interrupt/timer context) and is
    what a tracer shows; ``charge_cpu`` is the CPU the cycle ``charge``
    (wakeup + runqueue insert) is attributed to, which the machine pins
    to 0 on a UP build.  ``spin`` is lock-wait time already reported via
    the separate :class:`LockEvent`; the wakeup charge lands at
    ``t + spin``.
    """

    __slots__ = ("t", "cpu", "charge_cpu", "task", "charge", "spin")

    def __init__(
        self, t: int, cpu: int, charge_cpu: int, task: Any, charge: int, spin: int
    ) -> None:
        self.t = t
        self.cpu = cpu
        self.charge_cpu = charge_cpu
        self.task = task
        self.charge = charge
        self.spin = spin


class DispatchEvent:
    """A migrated task landed on its new CPU and paid the cache refill."""

    __slots__ = ("t", "cpu", "task", "cycles")

    def __init__(self, t: int, cpu: int, task: Any, cycles: int) -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.cycles = cycles


class LockEvent:
    """One pass through the global runqueue lock: ``spin`` cycles waited
    from ``t``, then ``hold`` cycles held from ``t + spin``."""

    __slots__ = ("t", "cpu", "task", "spin", "hold")

    def __init__(self, t: int, cpu: int, task: Any, spin: int, hold: int) -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.spin = spin
        self.hold = hold


class SyscallEvent:
    """A task left the CPU through a syscall boundary.

    ``op`` is ``"block"``, ``"yield"`` or ``"exit"``; ``detail`` names
    the blocking primitive (``"put chan"``, ``"sleep"``, …).
    """

    __slots__ = ("t", "cpu", "task", "op", "detail")

    def __init__(self, t: int, cpu: int, task: Any, op: str, detail: str = "") -> None:
        self.t = t
        self.cpu = cpu
        self.task = task
        self.op = op
        self.detail = detail


class FaultEvent:
    """A fault injector fired (or skipped, or restored) one fault."""

    __slots__ = ("t", "kind", "target", "outcome", "detail")

    def __init__(
        self, t: int, kind: str, target: str, outcome: str, detail: str
    ) -> None:
        self.t = t
        self.kind = kind
        self.target = target
        self.outcome = outcome
        self.detail = detail


class Probe:
    """Base class for pipeline observers.

    Subclasses declare the kinds they want in ``kinds`` and override the
    matching ``on_<kind>`` hooks; everything else stays a no-op.  Probes
    observe — they must not mutate tasks, CPUs, or the clock (the fault
    injector, which *does* mutate, only ever does so from CALLBACK
    events it scheduled at attach time, never from an emission hook).
    """

    #: Event kinds this probe subscribes to (subset of :data:`KINDS`).
    kinds: frozenset = frozenset()

    def on_attach(self, host: Any) -> None:
        """Called once when attached to a machine or executor."""

    def set_scheduler(self, name: str) -> None:
        """The host's scheduler (re)bound; hot-swaps included."""

    def on_sched(self, ev: Any) -> None:
        """A :class:`SchedEvent`, :class:`PreemptEvent` or
        :class:`RecalcEvent` (discriminate on ``ev.point``)."""

    def on_wakeup(self, ev: WakeupEvent) -> None:
        """A :class:`WakeupEvent`."""

    def on_dispatch(self, ev: DispatchEvent) -> None:
        """A :class:`DispatchEvent`."""

    def on_lock(self, ev: LockEvent) -> None:
        """A :class:`LockEvent`."""

    def on_fault(self, ev: FaultEvent) -> None:
        """A :class:`FaultEvent`."""

    def on_syscall(self, ev: SyscallEvent) -> None:
        """A :class:`SyscallEvent`."""


class ProbeSet:
    """The per-host pipeline: attached probes, indexed by event kind.

    Emitters read the kind attribute directly — ``if probes.sched:`` is
    the detached fast path, and ``for p in probes.sched: p.on_sched(ev)``
    the delivery loop — so an empty set costs one truthiness test per
    potential event and allocates nothing.
    """

    __slots__ = ("probes",) + KINDS

    def __init__(self) -> None:
        self.probes: tuple = ()
        for kind in KINDS:
            setattr(self, kind, ())

    def add(self, probe: Probe) -> Probe:
        """Subscribe ``probe`` to its declared kinds (idempotent)."""
        if probe in self.probes:
            return probe
        for kind in probe.kinds:
            if kind not in KINDS:
                raise ValueError(
                    f"unknown probe kind {kind!r}; choose from {KINDS}"
                )
        self.probes = self.probes + (probe,)
        for kind in probe.kinds:
            setattr(self, kind, getattr(self, kind) + (probe,))
        return probe

    def remove(self, probe: Probe) -> None:
        """Detach ``probe`` from every kind it subscribed to."""
        if probe not in self.probes:
            return
        self.probes = tuple(p for p in self.probes if p is not probe)
        for kind in KINDS:
            current = getattr(self, kind)
            if probe in current:
                setattr(self, kind, tuple(p for p in current if p is not probe))

    def first(self, cls: type) -> Optional[Probe]:
        """The first attached probe of (a subclass of) ``cls``, or None."""
        for probe in self.probes:
            if isinstance(probe, cls):
                return probe
        return None

    def set_scheduler(self, name: str) -> None:
        """Tell every probe the host's scheduler (re)bound."""
        for probe in self.probes:
            probe.set_scheduler(name)

    def __bool__(self) -> bool:
        return bool(self.probes)

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self):
        return iter(self.probes)

    def __repr__(self) -> str:
        return f"<ProbeSet {[type(p).__name__ for p in self.probes]}>"
