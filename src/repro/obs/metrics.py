"""MetricsProbe: rolling counters and histograms over the probe stream.

The first observer written *for* the pipeline rather than ported to it:
it subscribes to every event kind and keeps cheap aggregates — event
counters, cycle totals, power-of-two histograms, and a per-scheduler
decision-latency breakdown that survives hot swaps (it keys on the
name handed to :meth:`set_scheduler`).

Two read sides:

* :meth:`snapshot` — cumulative totals since attach (what ``repro
  metrics`` prints and the harness caches in ``CellResult.obs_metrics``);
* :meth:`window` — the delta since the previous ``window()`` call, for
  live rolling views (the serve endpoint polls this shape).

Histograms use the same power-of-two bucketing as the profiler
(``value.bit_length()``), so a bucket labelled ``8`` counts values in
``[128, 255]``.  ``to_dict``/``from_dict`` round-trip losslessly so a
cached cell replays into an identical probe.
"""

from __future__ import annotations

from typing import Any, Optional

from .probe import Probe

__all__ = ["MetricsProbe", "format_metrics", "reconcile_with_stats"]

#: The reconciliation contract: (probe counter/total, SchedStats field)
#: pairs that must agree exactly on any run.  Every number the probe
#: reports is a *derived* view of counters the simulator already keeps;
#: a mismatch means an emission site and the machine's own ledger have
#: drifted apart.  ``tests/obs/`` holds the contract on real runs and
#: the stress-parity fuzzer (:mod:`repro.scenario.fuzz`) re-asserts it
#: on every fuzzed scenario.
RECONCILE_COUNTERS = (
    ("picks", "schedule_calls"),
    ("idle_picks", "idle_schedules"),
    ("migrations", "migrations"),
    ("preemptions", "preemptions"),
    ("recalcs", "recalc_entries"),
)
RECONCILE_TOTALS = (
    ("examined", "tasks_examined"),
    ("lock_spin_cycles", "lock_spin_cycles"),
    # Decision cost is the scheduler-cycle ledger exactly (wakeup work
    # is charged outside scheduler_cycles, as in the profiler's phases).
    ("decision_cycles", "scheduler_cycles"),
)

#: Counter keys, in render order.  Kept explicit so snapshots from
#: different builds compare key-for-key.
COUNTER_KEYS = (
    "picks",
    "idle_picks",
    "switches",
    "migrations",
    "preemptions",
    "recalcs",
    "wakeups",
    "blocks",
    "yields",
    "exits",
    "lock_acquisitions",
    "lock_contentions",
    "faults_injected",
    "faults_skipped",
    "faults_restored",
)

#: Cycle/total keys, in render order.
TOTAL_KEYS = (
    "examined",
    "decision_cycles",
    "eval_cycles",
    "recalc_cycles",
    "switch_cycles",
    "lock_spin_cycles",
    "lock_hold_cycles",
    "wakeup_cycles",
    "migrate_cycles",
    "recalc_tasks",
)

#: Histogram names (power-of-two buckets keyed by ``bit_length``).
HIST_KEYS = ("decision_cycles", "examined", "lock_spin_cycles")


def _bucket(value: int) -> int:
    return value.bit_length()


class MetricsProbe(Probe):
    """Rolling counters/histograms over every pipeline event kind.

    Every aggregate is a commutative sum, so the probe is
    ``batch_capable``: the pipeline buffers events and drains them
    through the ``on_<kind>_batch`` loops below, which hoist the dict
    lookups ``on_sched`` & co. would otherwise repeat per event.  Reads
    (:meth:`snapshot`, and everything built on it) flush the owning
    pipeline first, so a snapshot never misses buffered events.
    """

    kinds = frozenset({"sched", "wakeup", "dispatch", "lock", "fault", "syscall"})
    batch_capable = True

    def __init__(self) -> None:
        self.counters: dict[str, int] = {k: 0 for k in COUNTER_KEYS}
        self.totals: dict[str, int] = {k: 0 for k in TOTAL_KEYS}
        self.hists: dict[str, dict[int, int]] = {k: {} for k in HIST_KEYS}
        #: scheduler name -> {"picks", "decision_cycles", "hist": {bucket: n}}
        self.schedulers: dict[str, dict[str, Any]] = {}
        self._scheduler = "?"
        self._window_mark: Optional[dict[str, Any]] = None
        #: The ProbeSet this probe is attached to (set by ``ProbeSet.add``);
        #: lets reads self-flush pending batches.
        self._pipeline: Optional[Any] = None

    # -- probe hooks --------------------------------------------------------

    def set_scheduler(self, name: str) -> None:
        self._scheduler = name
        self.schedulers.setdefault(
            name, {"picks": 0, "decision_cycles": 0, "hist": {}}
        )

    def on_sched(self, ev: Any) -> None:
        point = ev.point
        if point == "decision":
            c = self.counters
            t = self.totals
            c["picks"] += 1
            if ev.chosen is None:
                c["idle_picks"] += 1
            if ev.switch:
                c["switches"] += 1
                t["switch_cycles"] += ev.switch
            if ev.migrated_from is not None:
                c["migrations"] += 1
            t["examined"] += ev.examined
            t["decision_cycles"] += ev.cost
            t["eval_cycles"] += ev.eval_cycles
            t["recalc_cycles"] += ev.recalc_cycles
            h = self.hists["decision_cycles"]
            b = _bucket(ev.cost)
            h[b] = h.get(b, 0) + 1
            h = self.hists["examined"]
            b = _bucket(ev.examined)
            h[b] = h.get(b, 0) + 1
            per = self.schedulers.setdefault(
                self._scheduler, {"picks": 0, "decision_cycles": 0, "hist": {}}
            )
            per["picks"] += 1
            per["decision_cycles"] += ev.cost
            ph = per["hist"]
            b = _bucket(ev.cost)
            ph[b] = ph.get(b, 0) + 1
        elif point == "preempt":
            self.counters["preemptions"] += 1
        elif point == "recalc":
            self.counters["recalcs"] += 1
            self.totals["recalc_tasks"] += ev.tasks

    def on_wakeup(self, ev: Any) -> None:
        self.counters["wakeups"] += 1
        self.totals["wakeup_cycles"] += ev.charge

    def on_dispatch(self, ev: Any) -> None:
        self.totals["migrate_cycles"] += ev.cycles

    def on_lock(self, ev: Any) -> None:
        self.counters["lock_acquisitions"] += 1
        if ev.spin:
            self.counters["lock_contentions"] += 1
            self.totals["lock_spin_cycles"] += ev.spin
            h = self.hists["lock_spin_cycles"]
            b = _bucket(ev.spin)
            h[b] = h.get(b, 0) + 1
        self.totals["lock_hold_cycles"] += ev.hold

    def on_fault(self, ev: Any) -> None:
        if ev.outcome == "injected":
            self.counters["faults_injected"] += 1
        elif ev.outcome == "restored":
            self.counters["faults_restored"] += 1
        else:
            self.counters["faults_skipped"] += 1

    def on_syscall(self, ev: Any) -> None:
        if ev.op == "block":
            self.counters["blocks"] += 1
        elif ev.op == "yield":
            self.counters["yields"] += 1
        elif ev.op == "exit":
            self.counters["exits"] += 1

    # -- batched hooks ------------------------------------------------------
    #
    # Same arithmetic as the per-event hooks (bit-identical aggregates,
    # pinned by tests/obs/test_probe_batching.py), with the attribute
    # and dict lookups hoisted out of the loop.

    def on_sched_batch(self, evs: list) -> None:
        c = self.counters
        t = self.totals
        hist_dec = self.hists["decision_cycles"]
        hist_exam = self.hists["examined"]
        per = self.schedulers.setdefault(
            self._scheduler, {"picks": 0, "decision_cycles": 0, "hist": {}}
        )
        ph = per["hist"]
        picks = switches = idle_picks = migrations = preemptions = recalcs = 0
        examined = decision_cycles = eval_cycles = recalc_cycles = 0
        switch_cycles = recalc_tasks = 0
        for ev in evs:
            point = ev.point
            if point == "decision":
                picks += 1
                cost = ev.cost
                if ev.chosen is None:
                    idle_picks += 1
                if ev.switch:
                    switches += 1
                    switch_cycles += ev.switch
                if ev.migrated_from is not None:
                    migrations += 1
                examined += ev.examined
                decision_cycles += cost
                eval_cycles += ev.eval_cycles
                recalc_cycles += ev.recalc_cycles
                b = cost.bit_length()
                hist_dec[b] = hist_dec.get(b, 0) + 1
                ph[b] = ph.get(b, 0) + 1
                b = ev.examined.bit_length()
                hist_exam[b] = hist_exam.get(b, 0) + 1
            elif point == "preempt":
                preemptions += 1
            elif point == "recalc":
                recalcs += 1
                recalc_tasks += ev.tasks
        c["picks"] += picks
        c["idle_picks"] += idle_picks
        c["switches"] += switches
        c["migrations"] += migrations
        c["preemptions"] += preemptions
        c["recalcs"] += recalcs
        t["examined"] += examined
        t["decision_cycles"] += decision_cycles
        t["eval_cycles"] += eval_cycles
        t["recalc_cycles"] += recalc_cycles
        t["switch_cycles"] += switch_cycles
        t["recalc_tasks"] += recalc_tasks
        per["picks"] += picks
        per["decision_cycles"] += decision_cycles

    def on_wakeup_batch(self, evs: list) -> None:
        charge = 0
        for ev in evs:
            charge += ev.charge
        self.counters["wakeups"] += len(evs)
        self.totals["wakeup_cycles"] += charge

    def on_dispatch_batch(self, evs: list) -> None:
        cycles = 0
        for ev in evs:
            cycles += ev.cycles
        self.totals["migrate_cycles"] += cycles

    def on_lock_batch(self, evs: list) -> None:
        hist = self.hists["lock_spin_cycles"]
        contentions = spin_total = hold_total = 0
        for ev in evs:
            spin = ev.spin
            if spin:
                contentions += 1
                spin_total += spin
                b = spin.bit_length()
                hist[b] = hist.get(b, 0) + 1
            hold_total += ev.hold
        self.counters["lock_acquisitions"] += len(evs)
        self.counters["lock_contentions"] += contentions
        self.totals["lock_spin_cycles"] += spin_total
        self.totals["lock_hold_cycles"] += hold_total

    def on_syscall_batch(self, evs: list) -> None:
        blocks = yields = exits = 0
        for ev in evs:
            op = ev.op
            if op == "block":
                blocks += 1
            elif op == "yield":
                yields += 1
            elif op == "exit":
                exits += 1
        c = self.counters
        c["blocks"] += blocks
        c["yields"] += yields
        c["exits"] += exits

    # -- read side ----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Cumulative totals since attach (JSON-safe)."""
        pipeline = self._pipeline
        if pipeline is not None:
            pipeline.flush()
        return {
            "counters": dict(self.counters),
            "totals": dict(self.totals),
            "hists": {
                name: {str(b): n for b, n in sorted(hist.items())}
                for name, hist in self.hists.items()
            },
            "schedulers": {
                name: {
                    "picks": per["picks"],
                    "decision_cycles": per["decision_cycles"],
                    "mean_decision_cycles": (
                        per["decision_cycles"] / per["picks"] if per["picks"] else 0.0
                    ),
                    "hist": {str(b): n for b, n in sorted(per["hist"].items())},
                }
                for name, per in sorted(self.schedulers.items())
            },
        }

    def window(self) -> dict[str, Any]:
        """Delta since the previous ``window()`` call (rolling view).

        The first call returns everything since attach.  Histograms and
        per-scheduler breakdowns are cumulative-only; a window carries
        counters and totals, which is what a live dashboard polls.
        """
        snap = self.snapshot()
        mark = self._window_mark
        self._window_mark = snap
        if mark is None:
            return {"counters": snap["counters"], "totals": snap["totals"]}
        return {
            "counters": {
                k: snap["counters"][k] - mark["counters"].get(k, 0)
                for k in snap["counters"]
            },
            "totals": {
                k: snap["totals"][k] - mark["totals"].get(k, 0)
                for k in snap["totals"]
            },
        }

    # -- persistence --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Lossless export (the cacheable form; also a valid snapshot)."""
        return self.snapshot()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MetricsProbe":
        probe = cls()
        for k, v in (data.get("counters") or {}).items():
            if k in probe.counters:
                probe.counters[k] = int(v)
        for k, v in (data.get("totals") or {}).items():
            if k in probe.totals:
                probe.totals[k] = int(v)
        for name, hist in (data.get("hists") or {}).items():
            if name in probe.hists:
                probe.hists[name] = {int(b): int(n) for b, n in hist.items()}
        for name, per in (data.get("schedulers") or {}).items():
            probe.schedulers[name] = {
                "picks": int(per.get("picks", 0)),
                "decision_cycles": int(per.get("decision_cycles", 0)),
                "hist": {
                    int(b): int(n) for b, n in (per.get("hist") or {}).items()
                },
            }
        return probe


def reconcile_with_stats(probe: "MetricsProbe", stats: dict) -> list[str]:
    """Divergences between a probe's aggregates and a SchedStats mapping.

    ``stats`` is the raw counter dict a :class:`~repro.harness.result.
    CellResult` carries (field name → int).  Returns one human-readable
    line per violated :data:`RECONCILE_COUNTERS`/:data:`RECONCILE_TOTALS`
    pair — empty means the metrics ledger reconciles exactly.
    """
    errors: list[str] = []
    for probe_key, stat_key in RECONCILE_COUNTERS:
        got, want = probe.counters[probe_key], int(stats.get(stat_key, 0))
        if got != want:
            errors.append(
                f"counters[{probe_key}]={got} != stats[{stat_key}]={want}"
            )
    for probe_key, stat_key in RECONCILE_TOTALS:
        got, want = probe.totals[probe_key], int(stats.get(stat_key, 0))
        if got != want:
            errors.append(
                f"totals[{probe_key}]={got} != stats[{stat_key}]={want}"
            )
    return errors


def _hist_line(hist: dict[str, int], width: int = 40) -> str:
    """One-line sparkless rendering: ``2^b:count`` pairs."""
    if not hist:
        return "(empty)"
    parts = [f"2^{b}:{n}" for b, n in sorted(hist.items(), key=lambda kv: int(kv[0]))]
    line = "  ".join(parts)
    return line


def format_metrics(snapshot: dict[str, Any]) -> str:
    """Render a snapshot as the aligned text block ``repro metrics`` prints."""
    lines: list[str] = []
    counters = snapshot.get("counters") or {}
    totals = snapshot.get("totals") or {}
    hists = snapshot.get("hists") or {}
    schedulers = snapshot.get("schedulers") or {}
    width = max(
        [len(k) for k in list(counters) + list(totals)] or [8]
    )
    lines.append("counters")
    for key in COUNTER_KEYS:
        if key in counters:
            lines.append(f"  {key:<{width}}  {counters[key]:>14,}")
    for key in sorted(set(counters) - set(COUNTER_KEYS)):
        lines.append(f"  {key:<{width}}  {counters[key]:>14,}")
    lines.append("totals")
    for key in TOTAL_KEYS:
        if key in totals:
            lines.append(f"  {key:<{width}}  {totals[key]:>14,}")
    for key in sorted(set(totals) - set(TOTAL_KEYS)):
        lines.append(f"  {key:<{width}}  {totals[key]:>14,}")
    if hists:
        lines.append("histograms (power-of-two buckets: 2^b counts values with bit_length b)")
        for name in sorted(hists):
            lines.append(f"  {name}: {_hist_line(hists[name])}")
    if schedulers:
        lines.append("per-scheduler decision latency")
        for name, per in sorted(schedulers.items()):
            picks = per.get("picks", 0)
            mean = per.get("mean_decision_cycles")
            if mean is None:
                cyc = per.get("decision_cycles", 0)
                mean = cyc / picks if picks else 0.0
            lines.append(
                f"  {name:<12}  picks={picks:<10,}  mean_decision_cycles={mean:,.1f}"
            )
    return "\n".join(lines)
