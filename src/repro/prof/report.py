"""Rendering profiles: flat tables, collapsed stacks, Table-1 comparisons.

Three output formats, mirroring what the paper's tooling produced:

* :func:`flat_table` — a kernprof-style flat profile (per-phase cycles,
  share of busy time, charge counts) plus the hottest tasks;
* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack format
  (``sched;cpu;phase;task cycles`` per line), directly consumable by
  ``flamegraph.pl`` or speedscope; :func:`parse_collapsed` inverts it;
* :func:`table1_comparison` — the paper's Table 1: per-phase share of
  busy CPU-time, one column per scheduler, with the headline "% of
  kernel time in the scheduler" row.
"""

from __future__ import annotations

from typing import Any, Mapping, Union

from .profiler import Profiler
from .sink import PHASES, SCHEDULER_PHASES

__all__ = [
    "flat_table",
    "collapsed_stacks",
    "parse_collapsed",
    "table1_comparison",
]

ProfileLike = Union[Profiler, Mapping[str, Any]]


def _as_profiler(profile: ProfileLike) -> Profiler:
    if isinstance(profile, Profiler):
        return profile
    return Profiler.from_dict(dict(profile))


def _pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:5.1f}%" if whole > 0 else "    -"


def flat_table(profile: ProfileLike, top_tasks: int = 10) -> str:
    """Kernprof-style flat profile for one run."""
    prof = _as_profiler(profile)
    busy = prof.busy_cycles
    lines = [
        f"profile: scheduler={prof.scheduler}  "
        f"busy={busy} cycles  attributed={prof.total_cycles} cycles",
        "",
        f"{'phase':<14} {'cycles':>14} {'%busy':>7} {'charges':>10} {'avg':>8}",
    ]
    for phase in PHASES:
        cycles = prof.phase_cycles.get(phase, 0)
        count = prof.counts.get(phase, 0)
        avg = cycles // count if count else 0
        lines.append(
            f"{phase:<14} {cycles:>14} {_pct(cycles, busy):>7} "
            f"{count:>10} {avg:>8}"
        )
    lines.append(
        f"{'total':<14} {prof.total_cycles:>14} "
        f"{_pct(prof.total_cycles, busy):>7}"
    )
    lines.append("")
    lines.append(
        "in scheduler (pick+goodness_eval+recalc+lock_wait): "
        f"{prof.total_scheduler_cycles()} cycles = "
        f"{100.0 * prof.scheduler_fraction():.1f}% of busy time"
    )
    tasks = [(label, cyc) for label, cyc in prof.by_task().items() if label != "-"]
    if tasks:
        lines.append("")
        lines.append(f"hottest tasks (top {min(top_tasks, len(tasks))}):")
        for label, cycles in tasks[:top_tasks]:
            lines.append(f"  {label:<24} {cycles:>14} {_pct(cycles, busy):>7}")
    return "\n".join(lines)


def _cpu_frame(cpu: int) -> str:
    return "irq" if cpu < 0 else f"cpu{cpu}"


def collapsed_stacks(profile: ProfileLike) -> str:
    """Collapsed-stack lines: ``scheduler;cpu;phase;task cycles``.

    Feed the output straight to ``flamegraph.pl`` (or concatenate the
    files of two runs for a differential flamegraph — each stack's root
    frame is the scheduler name, so the runs stay distinguishable).
    """
    prof = _as_profiler(profile)
    lines = []
    for (phase, cpu, label), cycles in sorted(prof.cells.items()):
        lines.append(f"{prof.scheduler};{_cpu_frame(cpu)};{phase};{label} {cycles}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> dict[tuple[str, str, int, str], int]:
    """Invert :func:`collapsed_stacks`.

    Returns ``(scheduler, phase, cpu, task-label) -> cycles``; lines
    from multiple concatenated profiles merge additively, exactly as
    flamegraph tooling treats them.
    """
    out: dict[tuple[str, str, int, str], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        frames = stack.split(";")
        if len(frames) != 4:
            raise ValueError(f"malformed collapsed-stack line: {line!r}")
        sched, cpu_frame, phase, label = frames
        cpu = -1 if cpu_frame == "irq" else int(cpu_frame.removeprefix("cpu"))
        key = (sched, phase, cpu, label)
        out[key] = out.get(key, 0) + int(count)
    return out


def table1_comparison(profiles: Mapping[str, ProfileLike]) -> str:
    """The paper's Table 1: % of busy kernel time per phase, per policy.

    ``profiles`` maps a display name (usually the scheduler name) to a
    profile.  The headline row is the statistic behind the paper's
    "37-55 % of kernel time in the scheduler" observation.
    """
    profs = {name: _as_profiler(p) for name, p in profiles.items()}
    names = list(profs)
    width = max(10, *(len(n) + 2 for n in names))
    header = f"{'phase':<14}" + "".join(f"{n:>{width}}" for n in names)
    lines = [
        "Table 1 — where busy CPU-time goes, per scheduling policy",
        header,
        "-" * len(header),
    ]
    for phase in PHASES:
        row = f"{phase:<14}"
        for name in names:
            prof = profs[name]
            row += f"{100.0 * prof.phase_fraction(phase):>{width}.2f}"
        lines.append(row)
    lines.append("-" * len(header))
    row = f"{'in scheduler':<14}"
    for name in names:
        row += f"{100.0 * profs[name].scheduler_fraction():>{width}.2f}"
    lines.append(row)
    lines.append(
        "(columns: % of non-idle CPU-time; 'in scheduler' = "
        + "+".join(SCHEDULER_PHASES)
        + "+lock_wait)"
    )
    return "\n".join(lines)
