"""The shipped :class:`ProfSink`: accumulate, slice, and summarise.

One :class:`Profiler` instance covers one run (the harness creates a
fresh one per cell, mirroring how each cell gets a fresh scheduler and
machine — see ``tests/harness/test_stats_isolation.py``).  It keeps

* per-``(phase, cpu, task)`` cycle cells — the flamegraph leaves;
* per-phase totals, charge counts, and power-of-two size histograms
  (a charge of ``c`` cycles lands in bucket ``c.bit_length()``);
* a time series: cycles per phase per ``bucket_ticks`` timer ticks;
* the run's denominators (busy and total CPU-cycles), set after the
  run, from which the paper's "% of kernel time in the scheduler"
  statistic falls out per policy.

Everything is plain ints and strings, so :meth:`to_dict` /
:meth:`from_dict` round-trip losslessly through JSON — that is the
representation the harness cache stores.
"""

from __future__ import annotations

from typing import Any, Optional

from ..kernel.params import CYCLES_PER_TICK
from .sink import PHASES, SCHEDULER_PHASES

__all__ = ["Profiler", "conservation_errors"]


def conservation_errors(prof: "Profiler", stats: dict) -> list[str]:
    """Violations of the profiler's exact-conservation contract.

    ``stats`` is the raw SchedStats counter dict a cached cell carries.
    The contract (pinned by ``tests/prof/test_conservation.py`` and
    re-asserted per fuzzed scenario by :mod:`repro.scenario.fuzz`):
    the scheduler phases sum to ``SchedStats.scheduler_cycles`` exactly,
    and ``lock_wait`` equals ``lock_spin_cycles`` exactly.  Returns one
    line per violation; empty means cycles are conserved.
    """
    errors: list[str] = []
    got = prof.scheduler_cycles()
    want = int(stats.get("scheduler_cycles", 0))
    if got != want:
        errors.append(
            f"profiler scheduler phases sum to {got} cycles "
            f"!= stats[scheduler_cycles]={want}"
        )
    got = prof.phase_total("lock_wait")
    want = int(stats.get("lock_spin_cycles", 0))
    if got != want:
        errors.append(
            f"profiler lock_wait={got} != stats[lock_spin_cycles]={want}"
        )
    return errors


class Profiler:
    """Cycle-attribution accumulator implementing the ProfSink protocol."""

    def __init__(self, bucket_ticks: int = 100, scheduler: str = "?") -> None:
        if bucket_ticks < 1:
            raise ValueError("bucket_ticks must be >= 1")
        self.bucket_ticks = bucket_ticks
        self.bucket_cycles = bucket_ticks * CYCLES_PER_TICK
        self.scheduler = scheduler
        #: Every cycle ever charged, across all phases.
        self.total_cycles = 0
        #: phase -> cycles.
        self.phase_cycles: dict[str, int] = {}
        #: phase -> number of charges.
        self.counts: dict[str, int] = {}
        #: (phase, cpu, task-label) -> cycles.
        self.cells: dict[tuple[str, int, str], int] = {}
        #: time-bucket index -> phase -> cycles.
        self.series: dict[int, dict[str, int]] = {}
        #: phase -> pow2 bucket (charge.bit_length()) -> count.
        self.hist: dict[str, dict[int, int]] = {}
        #: Denominators, set once after the run (0 = not yet set).
        self.busy_cycles = 0
        self.total_cpu_cycles = 0

    # -- the sink interface ---------------------------------------------------

    def charge(
        self,
        phase: str,
        cycles: int,
        t: int,
        cpu: int = -1,
        task: Optional[Any] = None,
    ) -> None:
        if cycles <= 0:
            return
        self.total_cycles += cycles
        self.phase_cycles[phase] = self.phase_cycles.get(phase, 0) + cycles
        self.counts[phase] = self.counts.get(phase, 0) + 1
        label = "-" if task is None else (task.name or f"pid{task.pid}")
        key = (phase, cpu, label)
        self.cells[key] = self.cells.get(key, 0) + cycles
        bucket = t // self.bucket_cycles
        slot = self.series.setdefault(bucket, {})
        slot[phase] = slot.get(phase, 0) + cycles
        hist = self.hist.setdefault(phase, {})
        size = cycles.bit_length()
        hist[size] = hist.get(size, 0) + 1

    # -- run metadata ---------------------------------------------------------

    def set_scheduler(self, name: str) -> None:
        self.scheduler = name

    def set_denominators(self, busy_cycles: int, total_cpu_cycles: int) -> None:
        """Record the run's busy and total CPU-cycle denominators."""
        self.busy_cycles = max(0, busy_cycles)
        self.total_cpu_cycles = max(0, total_cpu_cycles)

    # -- derived views --------------------------------------------------------

    def phase_total(self, phase: str) -> int:
        return self.phase_cycles.get(phase, 0)

    def scheduler_cycles(self) -> int:
        """Cycles of decision work: matches ``SchedStats.scheduler_cycles``."""
        return sum(self.phase_cycles.get(p, 0) for p in SCHEDULER_PHASES)

    def total_scheduler_cycles(self) -> int:
        """Decision work plus lock spin: ``SchedStats.total_scheduler_cycles``."""
        return self.scheduler_cycles() + self.phase_cycles.get("lock_wait", 0)

    def scheduler_fraction(self) -> float:
        """Scheduler share of busy CPU-time — the paper's Table-1 number."""
        if self.busy_cycles <= 0:
            return 0.0
        return min(1.0, self.total_scheduler_cycles() / self.busy_cycles)

    def phase_fraction(self, phase: str) -> float:
        """One phase's share of busy CPU-time."""
        if self.busy_cycles <= 0:
            return 0.0
        return self.phase_cycles.get(phase, 0) / self.busy_cycles

    def by_cpu(self) -> dict[int, int]:
        """Attributed cycles per CPU id (-1: interrupt/timer context)."""
        out: dict[int, int] = {}
        for (_, cpu, _), cycles in self.cells.items():
            out[cpu] = out.get(cpu, 0) + cycles
        return out

    def by_task(self) -> dict[str, int]:
        """Attributed cycles per task label, descending."""
        out: dict[str, int] = {}
        for (_, _, label), cycles in self.cells.items():
            out[label] = out.get(label, 0) + cycles
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def series_rows(self) -> list[tuple[int, dict[str, int]]]:
        """(bucket-start-tick, phase->cycles) rows in time order."""
        return [
            (bucket * self.bucket_ticks, dict(self.series[bucket]))
            for bucket in sorted(self.series)
        ]

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Lossless JSON-safe representation (the harness-cache payload)."""
        return {
            "scheduler": self.scheduler,
            "bucket_ticks": self.bucket_ticks,
            "total_cycles": self.total_cycles,
            "busy_cycles": self.busy_cycles,
            "total_cpu_cycles": self.total_cpu_cycles,
            "phase_cycles": {p: self.phase_cycles[p] for p in PHASES if p in self.phase_cycles},
            "counts": {p: self.counts[p] for p in PHASES if p in self.counts},
            "cells": [
                [phase, cpu, label, cycles]
                for (phase, cpu, label), cycles in sorted(self.cells.items())
            ],
            "series": [
                [bucket, dict(sorted(slot.items()))]
                for bucket, slot in sorted(self.series.items())
            ],
            "hist": {
                phase: {str(size): count for size, count in sorted(buckets.items())}
                for phase, buckets in sorted(self.hist.items())
            },
            "scheduler_fraction": self.scheduler_fraction(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Profiler":
        prof = cls(
            bucket_ticks=int(data.get("bucket_ticks", 100)),
            scheduler=str(data.get("scheduler", "?")),
        )
        prof.total_cycles = int(data.get("total_cycles", 0))
        prof.busy_cycles = int(data.get("busy_cycles", 0))
        prof.total_cpu_cycles = int(data.get("total_cpu_cycles", 0))
        prof.phase_cycles = {str(k): int(v) for k, v in data.get("phase_cycles", {}).items()}
        prof.counts = {str(k): int(v) for k, v in data.get("counts", {}).items()}
        prof.cells = {
            (str(phase), int(cpu), str(label)): int(cycles)
            for phase, cpu, label, cycles in data.get("cells", [])
        }
        prof.series = {
            int(bucket): {str(p): int(c) for p, c in slot.items()}
            for bucket, slot in data.get("series", [])
        }
        prof.hist = {
            str(phase): {int(size): int(count) for size, count in buckets.items()}
            for phase, buckets in data.get("hist", {}).items()
        }
        return prof

    def __repr__(self) -> str:
        return (
            f"<Profiler sched={self.scheduler} total={self.total_cycles} "
            f"phases={len(self.phase_cycles)}>"
        )
