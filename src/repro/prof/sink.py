"""The phase taxonomy and the narrow interface the kernel hooks call.

The machine knows nothing about accumulation, histograms, or output
formats: its only obligation is to call :meth:`ProfSink.charge` at the
moment a cost-model charge lands, naming the phase.  Anything
implementing this one method can be attached via
``Machine.attach_profiler`` — the shipped implementation is
:class:`repro.prof.profiler.Profiler`.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

__all__ = ["PHASES", "SCHEDULER_PHASES", "LOCK_PHASES", "ProfSink"]

#: Every attributable phase, in flat-table presentation order.  The sum
#: of these buckets over a run is exactly the cycles the cost model
#: charged (the conservation property ``tests/prof`` pins).
PHASES: tuple[str, ...] = (
    "pick",
    "goodness_eval",
    "recalc",
    "lock_wait",
    "lock_hold",
    "wakeup",
    "dispatch",
    "migrate",
)

#: The phases that make up ``SchedStats.scheduler_cycles`` — the
#: decision work itself.  Their profiled sum equals that counter
#: exactly; adding ``lock_wait`` gives ``total_scheduler_cycles()``,
#: the numerator of the paper's "% of kernel time in the scheduler".
SCHEDULER_PHASES: tuple[str, ...] = ("pick", "goodness_eval", "recalc")

#: Runqueue-lock phases (SMP builds only; a UP run charges neither).
LOCK_PHASES: tuple[str, ...] = ("lock_wait", "lock_hold")


@runtime_checkable
class ProfSink(Protocol):
    """What the machine requires of an attached profiler: one method."""

    def charge(
        self,
        phase: str,
        cycles: int,
        t: int,
        cpu: int = -1,
        task: Optional[Any] = None,
    ) -> None:
        """Attribute ``cycles`` of work in ``phase`` at virtual time ``t``.

        ``cpu`` is the charged CPU's id (-1: interrupt/timer context);
        ``task`` is the task the work was done *for* (the woken task on
        a wakeup, the chosen task on a pick), not necessarily the task
        whose timeline pays — kernprof attributes the same way.
        """
