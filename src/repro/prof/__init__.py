"""repro.prof — kernprof-style cycle attribution for the simulator.

The paper's headline evidence is a kernel profile: SGI kernprof showing
37-55 % of kernel time inside ``schedule()``/``goodness()`` under
VolanoMark (Table 1, Figures 5-6).  This package is that instrument for
the simulator (and for the live :mod:`repro.serve` executor): every
cycle the machine charges is attributed to one of eight phases —

``pick``            the schedule() walk minus its goodness/recalc work
``goodness_eval``   per-task goodness()/utility evaluations
``recalc``          whole-system counter recalculation loops
``lock_wait``       spinning on the global runqueue lock
``lock_hold``       acquiring/holding the lock (uncontended cost)
``wakeup``          wake_up_process + run-queue insert
``dispatch``        the context switch out of schedule()
``migrate``         cache-refill penalty after a cross-CPU migration

— and to a (scheduler, CPU, task) triple, with per-phase power-of-two
histograms and a per-N-ticks time series.  Profiling is **off by
default and zero-cost when disabled**: the profiler rides the probe
pipeline (:mod:`repro.obs`) as a :class:`~repro.obs.ProfilerProbe`, the
kernel's emission sites skip event construction entirely when no probe
subscribes, and charges add nothing to simulated time either way — so
a profiled run and an unprofiled run are cycle-identical (pinned by
``tests/obs/test_pipeline_identity.py``).

Entry points: ``python -m repro profile``, the ``--profile`` flag on
``sweep``/``loadtest``, and the Table-1 section of
:func:`repro.analysis.report.build_report`.  See ``docs/profiling.md``.
"""

from .profiler import Profiler, conservation_errors
from .report import (
    collapsed_stacks,
    flat_table,
    parse_collapsed,
    table1_comparison,
)
from .sink import PHASES, SCHEDULER_PHASES, ProfSink

__all__ = [
    "PHASES",
    "SCHEDULER_PHASES",
    "ProfSink",
    "Profiler",
    "collapsed_stacks",
    "conservation_errors",
    "flat_table",
    "parse_collapsed",
    "table1_comparison",
]
